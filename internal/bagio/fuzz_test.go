package bagio

import (
	"bytes"
	"reflect"
	"testing"
)

// seedRecords returns one valid encoded record of every op type, for use
// as fuzz seed corpus.
func seedRecords(t testingF) [][]byte {
	bh, err := (&BagHeader{IndexPos: 4117, ConnCount: 2, ChunkCount: 1}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	encode := func(r *Record) []byte {
		var buf bytes.Buffer
		rw := NewRecordWriter(&buf)
		if err := rw.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	conn := (&Connection{ID: 0, Topic: "/imu", Type: "sensor_msgs/Imu", MD5Sum: "abc", Def: "float64 x"}).Encode()
	msg := (&MessageData{Conn: 0, Time: Time{Sec: 10, NSec: 500}, Data: []byte("payload")}).Encode()
	ix := (&IndexData{Conn: 0, Entries: []IndexEntry{
		{Time: Time{Sec: 10, NSec: 500}, Offset: 0},
		{Time: Time{Sec: 11, NSec: 0}, Offset: 64},
	}}).Encode()
	ci := (&ChunkInfo{ChunkPos: 4117, StartTime: Time{Sec: 10}, EndTime: Time{Sec: 11},
		Counts: map[uint32]uint32{0: 2}}).Encode()
	chunkNone, err := EncodeChunk([]byte("inner records"), CompressionNone)
	if err != nil {
		t.Fatal(err)
	}
	chunkGZ, err := EncodeChunk(bytes.Repeat([]byte("inner "), 32), CompressionGZ)
	if err != nil {
		t.Fatal(err)
	}
	return [][]byte{
		bh,
		encode(conn),
		encode(msg),
		encode(ix),
		encode(ci),
		encode(chunkNone),
		encode(chunkGZ),
	}
}

// testingF is the subset of *testing.F seedRecords needs (lets the helper
// also serve plain tests).
type testingF interface{ Fatal(args ...any) }

// decodeByOp drives every typed decoder reachable from a raw record; the
// fuzz targets call it to make corrupt records exercise the full decode
// surface, not just the framing.
func decodeByOp(r *Record) {
	op, err := r.Op()
	if err != nil {
		return
	}
	switch op {
	case OpBagHeader:
		DecodeBagHeader(r)
	case OpConnection:
		DecodeConnection(r)
	case OpMessageData:
		DecodeMessageData(r)
	case OpIndexData:
		DecodeIndexData(r)
	case OpChunkInfo:
		DecodeChunkInfo(r)
	case OpChunk:
		if inner, err := DecodeChunk(r); err == nil {
			// Inner records are themselves a record stream.
			rs := NewRecordScanner(bytes.NewReader(inner))
			for i := 0; i < 64; i++ {
				ir, err := rs.ReadRecord()
				if err != nil {
					break
				}
				decodeByOp(ir)
			}
		}
	}
}

// FuzzParseHeader feeds arbitrary bytes to the header field parser. A
// header that decodes must re-encode and decode back to the same fields
// (the parser and printer agree), and the typed accessors must never
// panic regardless of field lengths.
func FuzzParseHeader(f *testing.F) {
	for _, rec := range seedRecords(f) {
		if len(rec) >= 8 {
			// Strip the length prefix: the header block starts at byte 4.
			f.Add(rec[4:])
		}
	}
	f.Add([]byte{})
	f.Add([]byte{3, 0, 0, 0, 'a', '=', 'b'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, '='})
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := DecodeHeader(b)
		if err != nil {
			return
		}
		// Accessors must tolerate any field lengths.
		h.Op()
		for _, name := range []string{FieldConn, FieldCount, FieldSize, FieldVer} {
			h.U32(name)
		}
		h.U64(FieldIndexPos)
		h.GetTime(FieldTime)
		h.String(FieldTopic)
		// Round trip: encode is canonical, so decode(encode(h)) == h.
		h2, err := DecodeHeader(h.Encode())
		if err != nil {
			t.Fatalf("re-decode of encoded header failed: %v", err)
		}
		if !reflect.DeepEqual(h, h2) {
			t.Fatalf("header round trip drifted:\n%v\n%v", h, h2)
		}
	})
}

// FuzzReadRecord scans arbitrary bytes as a record stream and pushes every
// record that frames correctly through the typed decoders (including
// recursing into chunks). Nothing here may panic or allocate
// proportionally to a corrupt length prefix.
func FuzzReadRecord(f *testing.F) {
	var whole bytes.Buffer
	whole.WriteString(Magic)
	for _, rec := range seedRecords(f) {
		f.Add(rec)
		whole.Write(rec)
	}
	f.Add(whole.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, b []byte) {
		rs := NewRecordScanner(bytes.NewReader(b))
		// The stream may or may not lead with the magic.
		if bytes.HasPrefix(b, []byte(Magic)) {
			if err := rs.ReadMagic(); err != nil {
				t.Fatalf("magic-prefixed stream rejected: %v", err)
			}
		}
		for i := 0; i < 256; i++ {
			r, err := rs.ReadRecord()
			if err != nil {
				break
			}
			decodeByOp(r)
		}
		// SkipRecord must agree with ReadRecord on framing.
		rs2 := NewRecordScanner(bytes.NewReader(b))
		for i := 0; i < 256; i++ {
			if _, _, err := rs2.SkipRecord(); err != nil {
				break
			}
		}
	})
}
