// Package bagio implements the on-disk grammar of the ROS bag format
// version 2.0: length-prefixed records, each carrying a header made of
// name=value fields and an opaque data block. Higher layers
// (internal/rosbag) compose these records into chunked, indexed bag files.
//
// The format is reproduced from the ROS bag specification:
//
//	record  := <header_len:u32le> <header> <data_len:u32le> <data>
//	header  := field*
//	field   := <field_len:u32le> <name> '=' <value>
//
// Every record header carries an "op" field (one byte) identifying the
// record type; see the Op* constants.
package bagio

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Magic is the signature line that opens every v2.0 bag file.
const Magic = "#ROSBAG V2.0\n"

// Record op codes as defined by the bag v2.0 specification.
const (
	OpMessageData byte = 0x02 // serialized message bytes
	OpBagHeader   byte = 0x03 // file-level metadata, padded record
	OpIndexData   byte = 0x04 // per-connection index for the preceding chunk
	OpChunk       byte = 0x05 // container of message/connection records
	OpChunkInfo   byte = 0x06 // chunk summary, written at end of file
	OpConnection  byte = 0x07 // connection (topic) metadata
)

// BagHeaderLen is the fixed on-disk length of the bag header record
// (header + data), so that index_pos can be patched in place after the
// rest of the file is written. The spec pads the record to 4096 bytes.
const BagHeaderLen = 4096

// Header is a set of name=value fields attached to a record. Values are
// raw bytes; integer and time fields use the little-endian encodings
// provided by the Put*/Get* helpers.
type Header map[string][]byte

// Field name constants used across record types.
const (
	FieldOp          = "op"
	FieldIndexPos    = "index_pos"
	FieldConnCount   = "conn_count"
	FieldChunkCount  = "chunk_count"
	FieldCompression = "compression"
	FieldSize        = "size"
	FieldConn        = "conn"
	FieldTopic       = "topic"
	FieldTime        = "time"
	FieldVer         = "ver"
	FieldCount       = "count"
	FieldChunkPos    = "chunk_pos"
	FieldStartTime   = "start_time"
	FieldEndTime     = "end_time"
)

// Compression identifiers stored in chunk records. The reference
// implementation supports "none", "bz2" and "lz4"; this implementation
// supports "none" and "gz" (stdlib compress/gzip standing in for bz2).
const (
	CompressionNone = "none"
	CompressionGZ   = "gz"
)

// SetOp stores the record op code.
func (h Header) SetOp(op byte) { h[FieldOp] = []byte{op} }

// Op returns the record op code, or an error if the field is missing or
// malformed.
func (h Header) Op() (byte, error) {
	v, ok := h[FieldOp]
	if !ok {
		return 0, fmt.Errorf("bagio: header missing %q field", FieldOp)
	}
	if len(v) != 1 {
		return 0, fmt.Errorf("bagio: op field has length %d, want 1", len(v))
	}
	return v[0], nil
}

// PutU32 stores a little-endian uint32 field.
func (h Header) PutU32(name string, v uint32) {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	h[name] = b
}

// PutU64 stores a little-endian uint64 field.
func (h Header) PutU64(name string, v uint64) {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	h[name] = b
}

// PutString stores a string-valued field.
func (h Header) PutString(name, v string) { h[name] = []byte(v) }

// PutTime stores a ROS time field (u32 secs, u32 nsecs).
func (h Header) PutTime(name string, t Time) {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint32(b[0:4], t.Sec)
	binary.LittleEndian.PutUint32(b[4:8], t.NSec)
	h[name] = b
}

// U32 reads a little-endian uint32 field.
func (h Header) U32(name string) (uint32, error) {
	v, ok := h[name]
	if !ok {
		return 0, fmt.Errorf("bagio: header missing %q field", name)
	}
	if len(v) != 4 {
		return 0, fmt.Errorf("bagio: field %q has length %d, want 4", name, len(v))
	}
	return binary.LittleEndian.Uint32(v), nil
}

// U64 reads a little-endian uint64 field.
func (h Header) U64(name string) (uint64, error) {
	v, ok := h[name]
	if !ok {
		return 0, fmt.Errorf("bagio: header missing %q field", name)
	}
	if len(v) != 8 {
		return 0, fmt.Errorf("bagio: field %q has length %d, want 8", name, len(v))
	}
	return binary.LittleEndian.Uint64(v), nil
}

// String reads a string-valued field.
func (h Header) String(name string) (string, error) {
	v, ok := h[name]
	if !ok {
		return "", fmt.Errorf("bagio: header missing %q field", name)
	}
	return string(v), nil
}

// GetTime reads a ROS time field.
func (h Header) GetTime(name string) (Time, error) {
	v, ok := h[name]
	if !ok {
		return Time{}, fmt.Errorf("bagio: header missing %q field", name)
	}
	if len(v) != 8 {
		return Time{}, fmt.Errorf("bagio: time field %q has length %d, want 8", name, len(v))
	}
	return Time{
		Sec:  binary.LittleEndian.Uint32(v[0:4]),
		NSec: binary.LittleEndian.Uint32(v[4:8]),
	}, nil
}

// EncodedLen returns the byte length of the header when encoded.
func (h Header) EncodedLen() int {
	n := 0
	for name, value := range h {
		n += 4 + len(name) + 1 + len(value)
	}
	return n
}

// Encode serializes the header fields. Fields are emitted in sorted name
// order so encoding is deterministic (the spec does not require an order).
func (h Header) Encode() []byte {
	names := make([]string, 0, len(h))
	for name := range h {
		names = append(names, name)
	}
	sort.Strings(names)
	buf := make([]byte, 0, h.EncodedLen())
	var lenb [4]byte
	for _, name := range names {
		value := h[name]
		binary.LittleEndian.PutUint32(lenb[:], uint32(len(name)+1+len(value)))
		buf = append(buf, lenb[:]...)
		buf = append(buf, name...)
		buf = append(buf, '=')
		buf = append(buf, value...)
	}
	return buf
}

// DecodeHeader parses an encoded header block into a Header.
func DecodeHeader(b []byte) (Header, error) {
	h := make(Header)
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("bagio: truncated header field length (%d trailing bytes)", len(b))
		}
		fl := binary.LittleEndian.Uint32(b[:4])
		b = b[4:]
		if uint32(len(b)) < fl {
			return nil, fmt.Errorf("bagio: header field length %d exceeds remaining %d bytes", fl, len(b))
		}
		field := b[:fl]
		b = b[fl:]
		eq := -1
		for i, c := range field {
			if c == '=' {
				eq = i
				break
			}
		}
		if eq < 0 {
			return nil, fmt.Errorf("bagio: header field %q has no '=' separator", string(field))
		}
		name := string(field[:eq])
		if _, dup := h[name]; dup {
			return nil, fmt.Errorf("bagio: duplicate header field %q", name)
		}
		value := make([]byte, len(field)-eq-1)
		copy(value, field[eq+1:])
		h[name] = value
	}
	return h, nil
}
