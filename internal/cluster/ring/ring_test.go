package ring

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"
)

func mustRing(t *testing.T, members []Member, vnodes int) *Ring {
	t.Helper()
	r, err := New(members, vnodes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func genMembers(n int) []Member {
	ms := make([]Member, n)
	for i := range ms {
		ms[i] = Member{Name: fmt.Sprintf("node%02d", i), Addr: fmt.Sprintf("10.0.0.%d:7712", i+1)}
	}
	return ms
}

// TestRingProperties drives random memberships through the three
// placement invariants the cluster client depends on:
//
//  1. replica sets always hold min(R, N) distinct members,
//  2. placement is insensitive to membership-list order, and
//  3. removing (or adding) one member moves at most ~K/N of the keys —
//     consistent hashing's whole point.
func TestRingProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	const keys = 2000
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.IntN(9) // 2..10 members
		members := genMembers(n)
		r := mustRing(t, members, 0)

		// Distinctness and width at every plausible R.
		for _, rf := range []int{1, 2, 3, n, n + 3} {
			want := rf
			if want > n {
				want = n
			}
			for k := 0; k < 50; k++ {
				set := r.ReplicasFor(fmt.Sprintf("bag-%d-%d", trial, k), rf)
				if len(set) != want {
					t.Fatalf("n=%d R=%d: replica set has %d members, want %d", n, rf, len(set), want)
				}
				seen := map[string]bool{}
				for _, m := range set {
					if seen[m.Name] {
						t.Fatalf("n=%d R=%d: duplicate member %s in replica set", n, rf, m.Name)
					}
					seen[m.Name] = true
				}
				if set[0] != r.Owner(fmt.Sprintf("bag-%d-%d", trial, k)) {
					t.Fatalf("primary replica disagrees with Owner")
				}
			}
		}

		// Order insensitivity: a shuffled membership list places keys
		// identically.
		shuffled := append([]Member(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r2 := mustRing(t, shuffled, 0)
		for k := 0; k < 200; k++ {
			key := fmt.Sprintf("key-%d-%d", trial, k)
			if r.Owner(key) != r2.Owner(key) {
				t.Fatalf("placement depends on membership-list order for %q", key)
			}
		}

		// Minimal movement: drop one member; only keys it owned may move.
		if n < 3 {
			continue
		}
		victim := members[rng.IntN(n)].Name
		var survivors []Member
		for _, m := range members {
			if m.Name != victim {
				survivors = append(survivors, m)
			}
		}
		rs := mustRing(t, survivors, 0)
		moved := 0
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("move-%d-%d", trial, k)
			before, after := r.Owner(key), rs.Owner(key)
			if before != after {
				moved++
				if before.Name != victim {
					t.Fatalf("key %q moved %s->%s though %s left the ring", key, before.Name, after.Name, victim)
				}
			}
		}
		// Expected movement is keys/n; allow 2.5x slack for virtual-node
		// variance at small n.
		if limit := keys * 5 / (2 * n); moved > limit {
			t.Errorf("n=%d: removing one member moved %d/%d keys, want <= %d (~K/N)", n, moved, keys, limit)
		}
	}
}

// TestRingBalance pins the load spread DefaultVNodes buys: across a
// 5-node ring the busiest node carries at most ~1.35x the mean.
func TestRingBalance(t *testing.T) {
	r := mustRing(t, genMembers(5), 0)
	counts := map[string]int{}
	const keys = 10000
	for k := 0; k < keys; k++ {
		counts[r.Owner(fmt.Sprintf("bag%05d", k)).Name]++
	}
	mean := float64(keys) / 5
	for name, c := range counts {
		if ratio := float64(c) / mean; ratio > 1.35 || ratio < 0.65 {
			t.Errorf("node %s owns %d keys (%.2fx mean); ring is unbalanced", name, c, ratio)
		}
	}
}

// TestRingGolden pins exact placements for a fixed membership. These
// values are part of the deployment contract: clients and daemons built
// from different checkouts must route identically, and a process
// restart must not reshuffle a cluster. If this test breaks, the hash
// or vnode layout changed and every deployed membership would re-place
// — treat that as a wire-format revision, not a refactor.
func TestRingGolden(t *testing.T) {
	members := []Member{
		{Name: "borad-a", Addr: "10.0.0.1:7712"},
		{Name: "borad-b", Addr: "10.0.0.2:7712"},
		{Name: "borad-c", Addr: "10.0.0.3:7712"},
	}
	r := mustRing(t, members, 0)
	golden := map[string]string{
		"robot0":  "borad-b,borad-a",
		"robot1":  "borad-c,borad-b",
		"robot2":  "borad-c,borad-b",
		"robot3":  "borad-b,borad-a",
		"robot4":  "borad-c,borad-a",
		"mission": "borad-b,borad-a",
	}
	for key, want := range golden {
		var names []string
		for _, m := range r.ReplicasFor(key, 2) {
			names = append(names, m.Name)
		}
		if got := strings.Join(names, ","); got != want {
			t.Errorf("ReplicasFor(%q) = %s, want %s", key, got, want)
		}
	}
	if h := hashString("robot0"); h != 0xb9b662c4241126f5 {
		// Updating this constant means updating every golden above — and
		// accepting that deployed clusters reshuffle.
		t.Errorf("hashString(robot0) = %#x; placement hash contract broken", h)
	}
}

func TestNewRejectsBadMembership(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := New([]Member{{Name: "a"}, {Name: "a"}}, 0); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := New([]Member{{Name: ""}}, 0); err == nil {
		t.Error("empty name accepted")
	}
}

func TestParseMembers(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    int
		wantErr bool
	}{
		{"basic", "a 1.2.3.4:1\nb 1.2.3.4:2\n", 2, false},
		{"comments and blanks", "# hi\n\n  a 1.2.3.4:1\n\t\nb 1.2.3.4:2 \n", 2, false},
		{"empty", "# only comments\n", 0, true},
		{"malformed", "a\n", 0, true},
		{"extra field", "a 1.2.3.4:1 extra\n", 0, true},
		{"dup name", "a 1.2.3.4:1\na 1.2.3.4:2\n", 0, true},
		{"dup addr", "a 1.2.3.4:1\nb 1.2.3.4:1\n", 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ms, err := ParseMembers(strings.NewReader(tt.in))
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tt.wantErr)
			}
			if err == nil && len(ms) != tt.want {
				t.Fatalf("parsed %d members, want %d", len(ms), tt.want)
			}
		})
	}
	if _, ok := Find([]Member{{Name: "a", Addr: "x"}}, "a"); !ok {
		t.Error("Find missed a present member")
	}
	if _, ok := Find([]Member{{Name: "a", Addr: "x"}}, "b"); ok {
		t.Error("Find found an absent member")
	}
}
