// Package ring places bags on borad nodes by consistent hashing: each
// member contributes VNodes virtual points on a 64-bit hash circle, and
// a bag's replica set is the first R distinct members clockwise from the
// bag name's hash. The placement is a pure function of the membership
// list — byte-stable across process restarts and identical on every
// client and daemon reading the same membership file — and adding or
// removing one member moves only ~1/N of the keys (the arcs the changed
// member's points covered), which is what lets a fleet grow without a
// cache-invalidation stampede.
//
// The ring routes, it does not store: every borad in a cluster mounts
// the same shared back end (the paper's Lustre/PVFS deployments), so any
// node *can* serve any bag. Placement decides which R nodes' handle
// pools and block caches a bag's traffic concentrates on — cache
// affinity, not data ownership — which is also why failing over to a
// non-replica node is always safe, merely cold.
package ring

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member when the caller
// passes zero. 128 points per member keeps the max/mean key imbalance
// under ~1.3 for small clusters (see the ring property test) while the
// whole ring for a 100-node fleet stays under a megabyte.
const DefaultVNodes = 128

// DefaultReplication is the replica-set width R used by callers that do
// not pick their own: two nodes absorb one failure without a cold
// fallback.
const DefaultReplication = 2

// Member is one borad node: a stable name (the hash identity — renaming
// a node moves its keys) and the wire-protocol dial address.
type Member struct {
	Name string
	Addr string
}

// point is one virtual node: a position on the hash circle owned by a
// member.
type point struct {
	hash   uint64
	member int32 // index into members
}

// Ring is an immutable consistent-hash ring over a fixed membership.
// Build one with New; all methods are safe for concurrent use.
type Ring struct {
	members []Member
	points  []point
	vnodes  int
}

// New builds a ring over members with vnodes virtual points each (zero
// selects DefaultVNodes). Member order does not matter — the ring sorts
// by name so equal membership sets always build identical rings — but
// names must be unique and non-empty.
func New(members []Member, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, errors.New("ring: empty membership")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	ms := append([]Member(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	for i, m := range ms {
		if m.Name == "" {
			return nil, errors.New("ring: member with empty name")
		}
		if i > 0 && ms[i-1].Name == m.Name {
			return nil, fmt.Errorf("ring: duplicate member name %q", m.Name)
		}
	}
	r := &Ring{members: ms, vnodes: vnodes, points: make([]point, 0, len(ms)*vnodes)}
	for i, m := range ms {
		for v := 0; v < vnodes; v++ {
			h := hashString(m.Name + "#" + strconv.Itoa(v))
			r.points = append(r.points, point{hash: h, member: int32(i)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.member < b.member // total order even on hash collisions
	})
	return r, nil
}

// Members returns the membership in the ring's canonical (name-sorted)
// order. The returned slice is shared; do not mutate.
func (r *Ring) Members() []Member { return r.members }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the primary replica for key: the first member clockwise
// from the key's hash.
func (r *Ring) Owner(key string) Member {
	return r.members[r.walk(key, 1)[0]]
}

// ReplicasFor returns the first n distinct members clockwise from the
// key's hash — the key's replica set, primary first. n is capped at the
// membership size; n <= 0 selects DefaultReplication.
func (r *Ring) ReplicasFor(key string, n int) []Member {
	if n <= 0 {
		n = DefaultReplication
	}
	idxs := r.walk(key, n)
	out := make([]Member, len(idxs))
	for i, mi := range idxs {
		out[i] = r.members[mi]
	}
	return out
}

// walk collects the first n distinct member indexes clockwise from
// key's hash position.
func (r *Ring) walk(key string, n int) []int32 {
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hashString(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int32, 0, n)
	seen := make(map[int32]struct{}, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, ok := seen[p.member]; ok {
			continue
		}
		seen[p.member] = struct{}{}
		out = append(out, p.member)
	}
	return out
}

// hashString is 64-bit FNV-1a followed by a murmur3-style finalizer.
// FNV alone barely avalanches its trailing bytes, so the sequential
// "#0", "#1", ... vnode suffixes would cluster on the circle and ruin
// the balance the virtual nodes exist to provide; the finalizer mix
// spreads them. Inlined rather than hash/fnv so the hot routing path
// allocates nothing, and pinned here as part of the deployment
// contract: changing this function reshuffles every deployed cluster's
// placement (the golden test exists to make that impossible to do by
// accident).
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
