// Membership file parsing. A cluster's membership is static
// configuration (gossip can come later): one file, distributed to every
// daemon and client, whose content fully determines placement.
package ring

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// ParseMembers reads a membership list: one "name addr" pair per line,
// whitespace-separated, with blank lines and #-comments ignored.
//
//	# borad cluster membership
//	node1 10.0.0.1:7712
//	node2 10.0.0.2:7712
//	node3 10.0.0.3:7712
//
// Order in the file is irrelevant (the ring canonicalizes by name), so
// operators can append without reshuffling placement.
func ParseMembers(r io.Reader) ([]Member, error) {
	var members []Member
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("ring: members line %d: want \"name addr\", got %q", line, text)
		}
		members = append(members, Member{Name: fields[0], Addr: fields[1]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("ring: membership is empty")
	}
	seen := make(map[string]struct{}, len(members))
	addrs := make(map[string]struct{}, len(members))
	for _, m := range members {
		if _, ok := seen[m.Name]; ok {
			return nil, fmt.Errorf("ring: duplicate member name %q", m.Name)
		}
		if _, ok := addrs[m.Addr]; ok {
			return nil, fmt.Errorf("ring: duplicate member addr %q", m.Addr)
		}
		seen[m.Name] = struct{}{}
		addrs[m.Addr] = struct{}{}
	}
	return members, nil
}

// LoadMembers reads a membership file (see ParseMembers).
func LoadMembers(path string) ([]Member, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	members, err := ParseMembers(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return members, nil
}

// Find returns the member with the given name, if present.
func Find(members []Member, name string) (Member, bool) {
	for _, m := range members {
		if m.Name == name {
			return m, true
		}
	}
	return Member{}, false
}
