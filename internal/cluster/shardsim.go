// Shard placement pre-validation: before standing up K borad daemons
// over a shared Lustre back end, replay the intended workload against
// the production placement ring (internal/cluster/ring — the very code
// clients route with) and the platform cost model, and read off the
// numbers the deployment bets on: per-node load balance, near-linear
// query scaling with K, and whether hot-bag replica widening rescues a
// zipf-skewed swarm. A sim run costs microseconds; a mis-sized cluster
// costs a Tianhe allocation.

package cluster

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"repro/internal/cluster/ring"
)

// ShardSim describes one placement scenario: K nodes, B bags, a query
// workload, and the replication/widening policy under test.
type ShardSim struct {
	// Platform supplies the cost constants (nil selects NewLustre, the
	// paper's swarm platform).
	Platform *Lustre
	// Nodes is K, the borad daemon count.
	Nodes int
	// Bags is the distinct bag count.
	Bags int
	// Replication is the ring replica-set width R (1..Nodes).
	Replication int
	// Queries is the total query count replayed.
	Queries int
	// BagBytes is the payload each query streams.
	BagBytes int64
	// Skew is the zipf exponent of per-bag traffic; 0 replays uniform
	// traffic.
	Skew float64
	// HotWiden is the extra replicas a hot bag's set gains (0 disables
	// widening — the control arm of the skew experiment).
	HotWiden int
	// HotFactor marks a bag hot when its traffic exceeds HotFactor x
	// the mean per-bag count; zero selects 4.
	HotFactor float64
	// Seed drives the workload sampler; equal configs with equal seeds
	// replay identically.
	Seed uint64
}

// NodeLoad is one simulated node's share of the workload.
type NodeLoad struct {
	Name      string
	Queries   int
	ColdOpens int // bags this node pulled cold from the shared back end
	Busy      time.Duration
}

// ShardResult summarizes one placement replay.
type ShardResult struct {
	PerNode []NodeLoad
	// Imbalance is max/mean per-node query count — 1.0 is perfect.
	Imbalance float64
	// Makespan is when the last node finishes: the busiest node's
	// serving time, floored by the shared back end's cold-read time.
	Makespan time.Duration
	// BackendFloor is the shared back end's portion alone: total cold
	// bytes over the OSS aggregate bandwidth. Makespan pinned to this
	// floor means the cluster is backend-bound and more nodes buy
	// nothing.
	BackendFloor time.Duration
	// HotBags is how many bags crossed the hot threshold.
	HotBags int
}

// Run replays the scenario, routing exactly as the cluster client
// does: a cold bag's queries follow its ring primary (cache affinity,
// the healthy-path policy — R is the failover set, not a load
// balancer), while a hot bag's queries spread least-loaded across its
// widened replica set (the client's round-robin over widened
// candidates). A node serves a bag cold once (metadata open plus a
// backend pull at OSS aggregate bandwidth, the bytes also charged to
// the shared backend floor) and warm thereafter (NIC-bound from its
// own cache) — cache affinity is exactly what placement exists to buy.
func (s ShardSim) Run() (ShardResult, error) {
	l := s.Platform
	if l == nil {
		l = NewLustre()
	}
	if err := l.Validate(); err != nil {
		return ShardResult{}, err
	}
	if s.Nodes < 1 || s.Bags < 1 || s.Queries < 1 || s.BagBytes <= 0 {
		return ShardResult{}, fmt.Errorf("cluster: shard sim needs nodes/bags/queries/bytes >= 1 (have %d/%d/%d/%d)",
			s.Nodes, s.Bags, s.Queries, s.BagBytes)
	}
	if s.Replication < 1 || s.Replication > s.Nodes {
		return ShardResult{}, fmt.Errorf("cluster: replication %d outside 1..%d", s.Replication, s.Nodes)
	}
	members := make([]ring.Member, s.Nodes)
	for i := range members {
		members[i] = ring.Member{Name: fmt.Sprintf("borad-%02d", i), Addr: fmt.Sprintf("10.0.0.%d:7712", i+1)}
	}
	r, err := ring.New(members, 0)
	if err != nil {
		return ShardResult{}, err
	}
	nodeIdx := make(map[string]int, s.Nodes)
	for i, m := range r.Members() {
		nodeIdx[m.Name] = i
	}

	// Sample the workload: zipf-weighted (or uniform) bag picks.
	weights := make([]float64, s.Bags)
	cum := make([]float64, s.Bags)
	total := 0.0
	for i := range weights {
		weights[i] = 1.0
		if s.Skew > 0 {
			weights[i] = 1 / math.Pow(float64(i+1), s.Skew)
		}
		total += weights[i]
		cum[i] = total
	}
	rng := rand.New(rand.NewPCG(s.Seed, 0xb07a))
	order := make([]int, s.Queries)
	counts := make([]int, s.Bags)
	for q := range order {
		bag := sort.SearchFloat64s(cum, rng.Float64()*total)
		if bag >= s.Bags {
			bag = s.Bags - 1
		}
		order[q] = bag
		counts[bag]++
	}

	// Hot set: the daemons' rate trackers see sustained traffic well
	// above the mean; the sim's proxy is the final per-bag count.
	hotFactor := s.HotFactor
	if hotFactor <= 0 {
		hotFactor = 4
	}
	hotAt := hotFactor * float64(s.Queries) / float64(s.Bags)
	hot := make([]bool, s.Bags)
	hotBags := 0
	for i, c := range counts {
		if s.HotWiden > 0 && float64(c) >= hotAt {
			hot[i] = true
			hotBags++
		}
	}

	// Cost constants from the platform model.
	aggBW := l.OSTDev.ReadBW * float64(l.OSS) // shared backend ceiling
	nodeBW := l.Net.Bandwidth                 // per-node NIC serving warm traffic
	coldOpen := (l.Net.RTT + l.MDSOpCost).Seconds()
	warmOpen := l.Net.RTT.Seconds()
	xferCold := float64(s.BagBytes) / aggBW
	xferWarm := float64(s.BagBytes) / nodeBW

	busy := make([]float64, s.Nodes)
	queries := make([]int, s.Nodes)
	colds := make([]int, s.Nodes)
	warm := make([]bool, s.Bags*s.Nodes)
	var backendBytes int64
	for _, bag := range order {
		rf := 1 // affinity: cold bags ride their primary
		if hot[bag] {
			rf = s.Replication + s.HotWiden
		}
		reps := r.ReplicasFor(fmt.Sprintf("bag%04d", bag), rf)
		best := nodeIdx[reps[0].Name]
		for _, m := range reps[1:] {
			if i := nodeIdx[m.Name]; busy[i] < busy[best] {
				best = i
			}
		}
		queries[best]++
		if !warm[bag*s.Nodes+best] {
			warm[bag*s.Nodes+best] = true
			colds[best]++
			backendBytes += s.BagBytes
			busy[best] += coldOpen + xferCold + xferWarm
		} else {
			busy[best] += warmOpen + xferWarm
		}
	}

	res := ShardResult{PerNode: make([]NodeLoad, s.Nodes), HotBags: hotBags}
	maxBusy, maxQ := 0.0, 0
	for i, m := range r.Members() {
		res.PerNode[i] = NodeLoad{
			Name:      m.Name,
			Queries:   queries[i],
			ColdOpens: colds[i],
			Busy:      time.Duration(busy[i] * float64(time.Second)),
		}
		if busy[i] > maxBusy {
			maxBusy = busy[i]
		}
		if queries[i] > maxQ {
			maxQ = queries[i]
		}
	}
	res.Imbalance = float64(maxQ) * float64(s.Nodes) / float64(s.Queries)
	res.BackendFloor = time.Duration(float64(backendBytes) / aggBW * float64(time.Second))
	if floor := res.BackendFloor.Seconds(); floor > maxBusy {
		maxBusy = floor
	}
	res.Makespan = time.Duration(maxBusy * float64(time.Second))
	return res, nil
}
