// Package cluster models the paper's two distributed platforms as
// simio.Env implementations: the 4-node all-SSD PVFS cluster on 10 GbE
// (Section IV-D) and the Tianhe-1A Lustre storage subsystem — 3 object
// storage servers, 4 metadata servers, 56 Gb/s InfiniBand — used for the
// robotic-swarm analysis (Section IV-E).
//
// Contention is modeled at the shared resources: with C concurrent
// client processes, data transfers share the object servers' aggregate
// bandwidth, repositionings queue at the object servers' heads, and
// namespace operations queue at the metadata servers. Per-client CPU
// (parsing, sorting, yield) is not contended — every swarm process runs
// on its own compute node.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/simio"
)

// PVFS models the 4-node PVFS cluster: every node is both a data server
// (two NVMe drives in soft RAID-0) and reachable over 10 GbE; files are
// striped round-robin across servers.
type PVFS struct {
	Servers     int
	StripeSize  int64
	ServerDev   simio.Device  // per-server storage (RAID-0 of two NVMe)
	Net         simio.Network // client NIC / interconnect
	SW          simio.Software
	Clients     int           // concurrent client processes
	PerStripeOp time.Duration // server-side request handling per stripe

	clock *simio.Clock
}

// NewPVFS builds the paper's 4-node PVFS platform for one client.
func NewPVFS() *PVFS {
	raid0 := simio.NVMeSSD
	raid0.Name = "nvme-raid0"
	raid0.ReadBW *= 2
	raid0.WriteBW *= 2
	return &PVFS{
		Servers:     4,
		StripeSize:  64 * 1024,
		ServerDev:   raid0,
		Net:         simio.TenGbE,
		SW:          simio.DefaultSW,
		Clients:     1,
		PerStripeOp: 4 * time.Microsecond,
		clock:       &simio.Clock{},
	}
}

func (p *PVFS) clients() float64 {
	if p.Clients < 1 {
		return 1
	}
	return float64(p.Clients)
}

// effReadBW returns this client's share of min(NIC, aggregate servers).
func (p *PVFS) effReadBW() float64 {
	agg := p.ServerDev.ReadBW * float64(p.Servers)
	bw := p.Net.Bandwidth
	if agg < bw {
		bw = agg
	}
	return bw / p.clients()
}

func (p *PVFS) effWriteBW() float64 {
	agg := p.ServerDev.WriteBW * float64(p.Servers)
	bw := p.Net.Bandwidth
	if agg < bw {
		bw = agg
	}
	return bw / p.clients()
}

func (p *PVFS) xfer(n int64, bw float64) {
	if n > 0 {
		p.clock.Advance(time.Duration(float64(n) / bw * float64(time.Second)))
		// Per-stripe request handling at the servers.
		stripes := n/p.StripeSize + 1
		p.clock.Advance(time.Duration(stripes) * p.PerStripeOp / time.Duration(p.Servers))
	}
}

// Seek implements simio.Env: one network round trip plus a device
// repositioning on the stripe's server.
func (p *PVFS) Seek() {
	p.clock.Advance(p.Net.RTT + p.ServerDev.SeekLatency)
}

// SeqRead implements simio.Env.
func (p *PVFS) SeqRead(n int64) { p.xfer(n, p.effReadBW()) }

// RandRead implements simio.Env.
func (p *PVFS) RandRead(n int64) { p.Seek(); p.SeqRead(n) }

// SeqWrite implements simio.Env.
func (p *PVFS) SeqWrite(n int64) { p.xfer(n, p.effWriteBW()) }

// RandWrite implements simio.Env.
func (p *PVFS) RandWrite(n int64) { p.Seek(); p.SeqWrite(n) }

// Metadata implements simio.Env: round trip to the (single) PVFS
// metadata server.
func (p *PVFS) Metadata() {
	p.clock.Advance(p.Net.RTT + p.ServerDev.MetadataOp*time.Duration(p.clients()))
}

// CPU implements simio.Env (client-local, uncontended).
func (p *PVFS) CPU(d time.Duration) { p.clock.Advance(d) }

// Clock implements simio.Env.
func (p *PVFS) Clock() *simio.Clock { return p.clock }

// Software implements simio.Env.
func (p *PVFS) Software() simio.Software { return p.SW }

// Lustre models the Tianhe-1A storage subsystem.
type Lustre struct {
	OSS       int           // object storage servers
	MDS       int           // metadata servers
	OSTDev    simio.Device  // per-OSS backing array (HDD-based)
	Net       simio.Network // InfiniBand fabric
	SW        simio.Software
	Clients   int // concurrent swarm processes
	MDSOpCost time.Duration

	clock *simio.Clock
}

// NewLustre builds the paper's Lustre platform for one client; set
// Clients before use when modeling a swarm.
func NewLustre() *Lustre {
	ost := simio.SATAHDD
	ost.Name = "lustre-ost-array"
	// Each OSS fronts a RAID array of disks: high sequential bandwidth,
	// still disk-bound on repositioning.
	ost.ReadBW = 1.5e9
	ost.WriteBW = 1.2e9
	return &Lustre{
		OSS:       3,
		MDS:       4,
		OSTDev:    ost,
		Net:       simio.FDRInfiniBand,
		SW:        simio.DefaultSW,
		Clients:   1,
		MDSOpCost: 50 * time.Microsecond,
		clock:     &simio.Clock{},
	}
}

func (l *Lustre) clients() float64 {
	if l.Clients < 1 {
		return 1
	}
	return float64(l.Clients)
}

// Validate reports malformed platform parameters.
func (l *Lustre) Validate() error {
	if l.OSS < 1 || l.MDS < 1 {
		return fmt.Errorf("cluster: lustre needs at least one OSS and MDS (have %d/%d)", l.OSS, l.MDS)
	}
	return l.OSTDev.Validate()
}

// Seek implements simio.Env: repositionings queue at the OSS disk heads,
// so with C clients sharing OSS object servers each repositioning
// effectively waits for C/OSS of a disk seek.
func (l *Lustre) Seek() {
	queue := l.clients() / float64(l.OSS)
	if queue < 1 {
		queue = 1
	}
	l.clock.Advance(l.Net.RTT + time.Duration(float64(l.OSTDev.SeekLatency)*queue))
}

func (l *Lustre) xfer(n int64, perOSS float64) {
	if n <= 0 {
		return
	}
	bw := perOSS * float64(l.OSS)
	if l.Net.Bandwidth < bw {
		bw = l.Net.Bandwidth
	}
	bw /= l.clients()
	l.clock.Advance(time.Duration(float64(n) / bw * float64(time.Second)))
}

// SeqRead implements simio.Env: streaming reads share the aggregate OSS
// bandwidth.
func (l *Lustre) SeqRead(n int64) { l.xfer(n, l.OSTDev.ReadBW) }

// RandRead implements simio.Env.
func (l *Lustre) RandRead(n int64) { l.Seek(); l.SeqRead(n) }

// SeqWrite implements simio.Env.
func (l *Lustre) SeqWrite(n int64) { l.xfer(n, l.OSTDev.WriteBW) }

// RandWrite implements simio.Env.
func (l *Lustre) RandWrite(n int64) { l.Seek(); l.SeqWrite(n) }

// Metadata implements simio.Env: namespace operations queue across the
// MDS pool.
func (l *Lustre) Metadata() {
	queue := l.clients() / float64(l.MDS)
	if queue < 1 {
		queue = 1
	}
	l.clock.Advance(l.Net.RTT + time.Duration(float64(l.MDSOpCost)*queue))
}

// CPU implements simio.Env (per-compute-node, uncontended).
func (l *Lustre) CPU(d time.Duration) { l.clock.Advance(d) }

// Clock implements simio.Env.
func (l *Lustre) Clock() *simio.Clock { return l.clock }

// Software implements simio.Env.
func (l *Lustre) Software() simio.Software { return l.SW }
