package cluster

import "testing"

// base is the uniform-swarm scenario the scaling assertions replay.
func base() ShardSim {
	return ShardSim{
		Nodes:       3,
		Bags:        60,
		Replication: 2,
		Queries:     600,
		BagBytes:    64 << 20,
		Seed:        7,
	}
}

func mustRun(t *testing.T, s ShardSim) ShardResult {
	t.Helper()
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardSimValidates rejects configurations a real cluster would
// also refuse to boot with.
func TestShardSimValidates(t *testing.T) {
	bad := []func(*ShardSim){
		func(s *ShardSim) { s.Nodes = 0 },
		func(s *ShardSim) { s.Bags = 0 },
		func(s *ShardSim) { s.Queries = 0 },
		func(s *ShardSim) { s.BagBytes = 0 },
		func(s *ShardSim) { s.Replication = 0 },
		func(s *ShardSim) { s.Replication = s.Nodes + 1 },
	}
	for i, mutate := range bad {
		s := base()
		mutate(&s)
		if _, err := s.Run(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestShardSimDeterministic: equal configs with equal seeds replay to
// identical results — the property that makes a sim a pre-commit check
// rather than a dice roll.
func TestShardSimDeterministic(t *testing.T) {
	a, b := mustRun(t, base()), mustRun(t, base())
	if a.Makespan != b.Makespan || a.Imbalance != b.Imbalance {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v", a.Makespan, a.Imbalance, b.Makespan, b.Imbalance)
	}
	for i := range a.PerNode {
		if a.PerNode[i] != b.PerNode[i] {
			t.Fatalf("node %d diverged: %+v vs %+v", i, a.PerNode[i], b.PerNode[i])
		}
	}
	// A seed change must change the replay — checked under skew, where
	// per-bag counts are sensitive to the sampler.
	c, d := base(), base()
	c.Skew, d.Skew = 1.2, 1.2
	d.Seed = 8
	rc, rd := mustRun(t, c), mustRun(t, d)
	same := rc.Makespan == rd.Makespan
	for i := range rc.PerNode {
		same = same && rc.PerNode[i] == rd.PerNode[i]
	}
	if same {
		t.Error("different seeds replayed identically; the sampler ignores Seed")
	}
}

// TestShardSimBalance: uniform traffic over the production ring with
// least-loaded replica choice lands within ~1.35x of perfect balance,
// and every node pulls its share cold from the shared back end.
func TestShardSimBalance(t *testing.T) {
	res := mustRun(t, base())
	if res.Imbalance > 1.35 {
		t.Errorf("imbalance = %.2f, want <= 1.35", res.Imbalance)
	}
	for _, n := range res.PerNode {
		if n.Queries == 0 {
			t.Errorf("node %s served nothing", n.Name)
		}
		if n.ColdOpens == 0 {
			t.Errorf("node %s never touched the back end", n.Name)
		}
	}
}

// TestShardSimNearLinearScaling is the pre-validation the cluster-swarm
// bench later confirms on real daemons: K=3 must beat K=1 by well over
// the 1.7x acceptance bar while the shared back end is not the floor.
func TestShardSimNearLinearScaling(t *testing.T) {
	k1 := base()
	k1.Nodes, k1.Replication = 1, 1
	r1 := mustRun(t, k1)
	r3 := mustRun(t, base())
	speedup := r1.Makespan.Seconds() / r3.Makespan.Seconds()
	if speedup < 2.2 {
		t.Errorf("K=3 speedup = %.2fx, want >= 2.2x (K=1 %v, K=3 %v)", speedup, r1.Makespan, r3.Makespan)
	}
	if r3.Makespan <= r3.BackendFloor {
		t.Errorf("K=3 is backend-bound (makespan %v <= floor %v); the scenario proves nothing about node scaling",
			r3.Makespan, r3.BackendFloor)
	}
}

// TestShardSimHotWideningRescuesSkew: under zipf traffic a fixed-R
// placement bottlenecks on the hot bags' replicas; widening their sets
// must cut both imbalance and makespan.
func TestShardSimHotWideningRescuesSkew(t *testing.T) {
	skewed := ShardSim{
		Nodes:       6,
		Bags:        60,
		Replication: 2,
		Queries:     1200,
		BagBytes:    64 << 20,
		Skew:        1.2,
		Seed:        7,
	}
	plain := mustRun(t, skewed)
	widened := skewed
	widened.HotWiden = 2
	wres := mustRun(t, widened)

	if wres.HotBags == 0 {
		t.Fatal("zipf 1.2 produced no hot bags; the scenario is mis-sized")
	}
	if plain.HotBags != 0 {
		t.Errorf("widening disabled but %d bags marked hot", plain.HotBags)
	}
	if wres.Imbalance >= plain.Imbalance {
		t.Errorf("widening did not improve balance: %.2f -> %.2f", plain.Imbalance, wres.Imbalance)
	}
	if wres.Makespan >= plain.Makespan {
		t.Errorf("widening did not improve makespan: %v -> %v", plain.Makespan, wres.Makespan)
	}
}
