package cluster

import (
	"testing"
	"time"
)

func TestPVFSNetworkBound(t *testing.T) {
	p := NewPVFS()
	// Aggregate server bandwidth (4 × 3.6 GB/s) exceeds the 10 GbE NIC,
	// so a 1.25 GB stream should take ≈1 s.
	p.SeqRead(1_250_000_000)
	got := p.Clock().Elapsed()
	if got < 950*time.Millisecond || got > 1200*time.Millisecond {
		t.Errorf("1.25 GB over 10 GbE = %v, want ≈1 s", got)
	}
}

func TestPVFSSeekIncludesNetwork(t *testing.T) {
	p := NewPVFS()
	p.Seek()
	if got := p.Clock().Elapsed(); got <= p.ServerDev.SeekLatency {
		t.Errorf("PVFS seek = %v, must include a network round trip", got)
	}
}

func TestPVFSClientsShareBandwidth(t *testing.T) {
	one := NewPVFS()
	four := NewPVFS()
	four.Clients = 4
	one.SeqRead(1e9)
	four.SeqRead(1e9)
	r := float64(four.Clock().Elapsed()) / float64(one.Clock().Elapsed())
	if r < 3.5 || r > 4.5 {
		t.Errorf("4-client slowdown = %.2fx, want ≈4x", r)
	}
}

func TestPVFSEnvInterfaceOps(t *testing.T) {
	p := NewPVFS()
	p.RandRead(1 << 20)
	p.SeqWrite(1 << 20)
	p.RandWrite(1 << 20)
	p.Metadata()
	p.CPU(time.Millisecond)
	if p.Clock().Elapsed() <= time.Millisecond {
		t.Error("ops accrued no time")
	}
	if p.Software().RecordParse == 0 {
		t.Error("Software not populated")
	}
	if p.SeqRead(0); p.Clock().Elapsed() > time.Second {
		t.Error("zero-byte read charged transfer time")
	}
}

func TestLustreValidate(t *testing.T) {
	l := NewLustre()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	l.OSS = 0
	if err := l.Validate(); err == nil {
		t.Error("zero OSS accepted")
	}
}

func TestLustreAggregateBandwidth(t *testing.T) {
	l := NewLustre()
	// 3 OSS × 1.5 GB/s = 4.5 GB/s aggregate, below the 7 GB/s fabric.
	l.SeqRead(4_500_000_000)
	got := l.Clock().Elapsed()
	if got < 950*time.Millisecond || got > 1100*time.Millisecond {
		t.Errorf("4.5 GB on Lustre = %v, want ≈1 s", got)
	}
}

func TestLustreSeekQueueing(t *testing.T) {
	single := NewLustre()
	swarm := NewLustre()
	swarm.Clients = 90 // 30 per OSS
	single.Seek()
	swarm.Seek()
	r := float64(swarm.Clock().Elapsed()) / float64(single.Clock().Elapsed())
	if r < 20 || r > 40 {
		t.Errorf("seek queueing factor at 90 clients = %.1fx, want ≈30x", r)
	}
}

func TestLustreMDSQueueing(t *testing.T) {
	single := NewLustre()
	swarm := NewLustre()
	swarm.Clients = 100
	single.Metadata()
	swarm.Metadata()
	if swarm.Clock().Elapsed() <= single.Clock().Elapsed() {
		t.Error("metadata ops should queue under swarm load")
	}
	// 100 clients over 4 MDS → ≈25x the op cost (plus constant RTT).
	r := float64(swarm.Clock().Elapsed()-single.Net.RTT) / float64(single.Clock().Elapsed()-single.Net.RTT)
	if r < 20 || r > 30 {
		t.Errorf("MDS queue factor = %.1fx, want ≈25x", r)
	}
}

func TestLustreCPUUncontended(t *testing.T) {
	a, b := NewLustre(), NewLustre()
	b.Clients = 100
	a.CPU(time.Second)
	b.CPU(time.Second)
	if a.Clock().Elapsed() != b.Clock().Elapsed() {
		t.Error("client CPU must not be contended by swarm size")
	}
}

func TestLustreWritePath(t *testing.T) {
	l := NewLustre()
	l.SeqWrite(3_600_000_000) // 3 OSS × 1.2 GB/s
	got := l.Clock().Elapsed()
	if got < 950*time.Millisecond || got > 1100*time.Millisecond {
		t.Errorf("3.6 GB write = %v, want ≈1 s", got)
	}
	l.RandWrite(1 << 20)
	l.RandRead(1 << 20)
	if l.Clock().Ops() != l.Clock().Ops() { // smoke: Ops accessible
		t.Error("unreachable")
	}
}

func TestClientsDefaultsToOne(t *testing.T) {
	p := NewPVFS()
	p.Clients = 0
	p.SeqRead(1e9)
	q := NewPVFS()
	q.Clients = 1
	q.SeqRead(1e9)
	if p.Clock().Elapsed() != q.Clock().Elapsed() {
		t.Error("Clients=0 should behave like a single client")
	}
	l := NewLustre()
	l.Clients = -5
	l.Seek()
	m := NewLustre()
	m.Seek()
	if l.Clock().Elapsed() != m.Clock().Elapsed() {
		t.Error("negative Clients should behave like a single client")
	}
}
