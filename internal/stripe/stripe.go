// Package stripe implements a striped file: one logical byte stream
// laid out round-robin across N lane files at a fixed stripe size, the
// data distribution scheme of parallel file systems like the paper's
// PVFS and Lustre platforms. The container layer can stripe a topic's
// data file across lanes so reads fan out over multiple spindles/OSTs —
// the "multiple levels of parallelism in a file system" BORA exploits.
package stripe

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// DefaultStripeSize matches the common parallel-file-system default.
const DefaultStripeSize = 64 * 1024

// LanePrefix names the lane files: <prefix>0, <prefix>1, ...
const LanePrefix = "data."

// lanePath returns the path of lane i under dir.
func lanePath(dir string, i int) string {
	return filepath.Join(dir, LanePrefix+strconv.Itoa(i))
}

// Writer appends a logical stream across lane files.
type Writer struct {
	lanes      []*os.File
	stripeSize int64
	offset     int64 // logical bytes written
	closed     bool
}

// Create initializes a striped file with the given lane count under
// dir. stripeSize ≤ 0 selects DefaultStripeSize.
func Create(dir string, lanes int, stripeSize int64) (*Writer, error) {
	if lanes < 1 {
		return nil, fmt.Errorf("stripe: lane count %d < 1", lanes)
	}
	if stripeSize <= 0 {
		stripeSize = DefaultStripeSize
	}
	w := &Writer{stripeSize: stripeSize}
	for i := 0; i < lanes; i++ {
		f, err := os.Create(lanePath(dir, i))
		if err != nil {
			w.Close()
			return nil, err
		}
		w.lanes = append(w.lanes, f)
	}
	return w, nil
}

// Append writes p at the current logical end, returning the logical
// offset it landed at.
func (w *Writer) Append(p []byte) (int64, error) {
	if w.closed {
		return 0, fmt.Errorf("stripe: writer closed")
	}
	start := w.offset
	off := w.offset
	for len(p) > 0 {
		stripeIdx := off / w.stripeSize
		lane := w.lanes[stripeIdx%int64(len(w.lanes))]
		within := off % w.stripeSize
		room := w.stripeSize - within
		n := int64(len(p))
		if n > room {
			n = room
		}
		lanePos := (stripeIdx/int64(len(w.lanes)))*w.stripeSize + within
		if _, err := lane.WriteAt(p[:n], lanePos); err != nil {
			return start, err
		}
		p = p[n:]
		off += n
	}
	w.offset = off
	return start, nil
}

// Size returns the logical length written so far.
func (w *Writer) Size() int64 { return w.offset }

// Close flushes and closes every lane.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	var first error
	for _, f := range w.lanes {
		if f == nil {
			continue
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Reader serves random reads of the logical stream.
type Reader struct {
	lanes      []*os.File
	stripeSize int64
	size       int64
}

// Open opens an existing striped file with the given geometry. The
// logical size is derived from the lane sizes.
func Open(dir string, lanes int, stripeSize int64) (*Reader, error) {
	if lanes < 1 {
		return nil, fmt.Errorf("stripe: lane count %d < 1", lanes)
	}
	if stripeSize <= 0 {
		stripeSize = DefaultStripeSize
	}
	r := &Reader{stripeSize: stripeSize}
	for i := 0; i < lanes; i++ {
		f, err := os.Open(lanePath(dir, i))
		if err != nil {
			r.Close()
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			r.Close()
			return nil, err
		}
		r.size += st.Size()
		r.lanes = append(r.lanes, f)
	}
	return r, nil
}

// Size returns the logical file size.
func (r *Reader) Size() int64 { return r.size }

// ReadAt implements io.ReaderAt over the logical stream.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("stripe: negative offset")
	}
	total := 0
	for len(p) > 0 {
		if off >= r.size {
			return total, io.EOF
		}
		stripeIdx := off / r.stripeSize
		lane := r.lanes[stripeIdx%int64(len(r.lanes))]
		within := off % r.stripeSize
		room := r.stripeSize - within
		n := int64(len(p))
		if n > room {
			n = room
		}
		if remaining := r.size - off; n > remaining {
			n = remaining
		}
		lanePos := (stripeIdx/int64(len(r.lanes)))*r.stripeSize + within
		read, err := lane.ReadAt(p[:n], lanePos)
		total += read
		if err != nil {
			return total, fmt.Errorf("stripe: lane read at %d: %w", lanePos, err)
		}
		p = p[n:]
		off += n
	}
	return total, nil
}

// Close releases the lane handles.
func (r *Reader) Close() error {
	var first error
	for _, f := range r.lanes {
		if f == nil {
			continue
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
