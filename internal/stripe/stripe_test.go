package stripe

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func roundTripDir(t *testing.T, lanes int, stripeSize int64, chunks [][]byte) (*Reader, []byte) {
	t.Helper()
	dir := t.TempDir()
	w, err := Create(dir, lanes, stripeSize)
	if err != nil {
		t.Fatal(err)
	}
	var logical []byte
	for _, c := range chunks {
		off, err := w.Append(c)
		if err != nil {
			t.Fatal(err)
		}
		if off != int64(len(logical)) {
			t.Fatalf("Append returned offset %d, want %d", off, len(logical))
		}
		logical = append(logical, c...)
	}
	if w.Size() != int64(len(logical)) {
		t.Fatalf("Size = %d, want %d", w.Size(), len(logical))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, lanes, stripeSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r, logical
}

func TestRoundTripSmallStripes(t *testing.T) {
	chunks := [][]byte{
		[]byte("hello "), []byte("striped "), []byte("world, this payload spans lanes"),
	}
	r, logical := roundTripDir(t, 3, 8, chunks)
	if r.Size() != int64(len(logical)) {
		t.Fatalf("reader Size = %d", r.Size())
	}
	got := make([]byte, len(logical))
	if _, err := r.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, logical) {
		t.Errorf("full read mismatch:\n got %q\nwant %q", got, logical)
	}
}

func TestPartialReads(t *testing.T) {
	payload := bytes.Repeat([]byte("0123456789"), 100)
	r, logical := roundTripDir(t, 4, 16, [][]byte{payload})
	for _, tc := range []struct{ off, n int }{
		{0, 1}, {15, 2}, {16, 16}, {17, 40}, {999, 1}, {500, 250},
	} {
		got := make([]byte, tc.n)
		if _, err := r.ReadAt(got, int64(tc.off)); err != nil {
			t.Fatalf("ReadAt(%d,%d): %v", tc.off, tc.n, err)
		}
		if !bytes.Equal(got, logical[tc.off:tc.off+tc.n]) {
			t.Errorf("range [%d,%d) mismatch", tc.off, tc.off+tc.n)
		}
	}
	// Reading past the end returns EOF.
	buf := make([]byte, 10)
	if _, err := r.ReadAt(buf, r.Size()); err != io.EOF {
		t.Errorf("read at EOF: %v", err)
	}
	if _, err := r.ReadAt(buf, -1); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestLaneDistribution(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(bytes.Repeat([]byte{0xAA}, 100)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// 100 bytes at stripe 10 over 4 lanes: lanes get 30,30,20,20 bytes.
	want := []int64{30, 30, 20, 20}
	for i, wantSize := range want {
		st, err := os.Stat(filepath.Join(dir, LanePrefix+string(rune('0'+i))))
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() != wantSize {
			t.Errorf("lane %d has %d bytes, want %d", i, st.Size(), wantSize)
		}
	}
}

func TestWriterClosedRejectsAppend(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if _, err := w.Append([]byte("x")); err == nil {
		t.Error("append after close accepted")
	}
}

func TestGeometryValidation(t *testing.T) {
	if _, err := Create(t.TempDir(), 0, 0); err == nil {
		t.Error("zero lanes accepted")
	}
	if _, err := Open(t.TempDir(), 0, 0); err == nil {
		t.Error("zero lanes accepted on open")
	}
	if _, err := Open(t.TempDir(), 2, 0); err == nil {
		t.Error("open of missing lanes accepted")
	}
}

// Property: arbitrary chunk sequences round-trip under arbitrary small
// geometries.
func TestStripeQuick(t *testing.T) {
	f := func(seed int64, lanes8, stripe8 uint8) bool {
		lanes := 1 + int(lanes8%5)
		stripeSize := int64(1 + stripe8%64)
		rng := rand.New(rand.NewSource(seed))
		var chunks [][]byte
		for i := 0; i < 1+rng.Intn(8); i++ {
			c := make([]byte, rng.Intn(200))
			rng.Read(c)
			chunks = append(chunks, c)
		}
		dir, err := os.MkdirTemp("", "stripe-quick-")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		w, err := Create(dir, lanes, stripeSize)
		if err != nil {
			return false
		}
		var logical []byte
		for _, c := range chunks {
			if _, err := w.Append(c); err != nil {
				return false
			}
			logical = append(logical, c...)
		}
		if w.Close() != nil {
			return false
		}
		r, err := Open(dir, lanes, stripeSize)
		if err != nil {
			return false
		}
		defer r.Close()
		if len(logical) == 0 {
			return r.Size() == 0
		}
		got := make([]byte, len(logical))
		if _, err := r.ReadAt(got, 0); err != nil {
			return false
		}
		if !bytes.Equal(got, logical) {
			return false
		}
		// Random sub-range.
		off := rng.Intn(len(logical))
		n := rng.Intn(len(logical) - off)
		sub := make([]byte, n)
		if _, err := r.ReadAt(sub, int64(off)); err != nil {
			return false
		}
		return bytes.Equal(sub, logical[off:off+n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
