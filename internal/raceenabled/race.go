//go:build race

package raceenabled

// Enabled is true when the race detector is compiled in.
const Enabled = true
