// Package raceenabled exposes whether the binary was built with the
// race detector. Allocation-budget tests use it to downgrade strict
// testing.AllocsPerRun assertions to logs: the race runtime adds its
// own allocations to instrumented code, so exact alloc counts only
// hold in non-race builds, while the tests' correctness checks (byte
// equivalence, retained-buffer safety) run everywhere.
package raceenabled
