package workload

import (
	"path/filepath"
	"testing"

	"repro/internal/rosbag"
)

func TestHandheldSLAMSpecsMatchTableII(t *testing.T) {
	specs := HandheldSLAMSpecs()
	if len(specs) != 7 {
		t.Fatalf("Table II has 7 topics, got %d", len(specs))
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %s: %v", s.Name, err)
		}
	}
	bag, err := HandheldSLAMBag(2_900_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Table II: the 2.9 GB bag has ~1,429 depth images and ~24,367 IMU
	// messages; our steady-rate model should land within 15%.
	checks := []struct {
		topic string
		want  int
	}{
		{TopicDepthImage, 1429},
		{TopicRGBImage, 1431},
		{TopicRGBCameraInfo, 1432},
		{TopicMarkerArray, 14487},
		{TopicIMU, 24367},
		{TopicTF, 16411},
	}
	for _, c := range checks {
		i := bag.TopicIndex(c.topic)
		if i < 0 {
			t.Errorf("topic %s missing", c.topic)
			continue
		}
		got := bag.Topics[i].Count
		r := float64(got) / float64(c.want)
		if r < 0.85 || r > 1.15 {
			t.Errorf("%s: %d messages, Table II says %d (ratio %.2f)", c.topic, got, c.want, r)
		}
	}
	// >98% of the bytes are image data.
	img := bag.Topics[bag.TopicIndex(TopicDepthImage)].Bytes + bag.Topics[bag.TopicIndex(TopicRGBImage)].Bytes
	if share := float64(img) / float64(bag.TotalBytes); share < 0.97 {
		t.Errorf("image byte share = %.3f, Table II implies >0.98", share)
	}
}

func TestAppsMatchTableIII(t *testing.T) {
	apps := Apps()
	if len(apps) != 4 {
		t.Fatalf("Table III has 4 applications, got %d", len(apps))
	}
	byAb := map[string]App{}
	for _, a := range apps {
		byAb[a.Abbrev] = a
		if len(a.Topics) == 0 {
			t.Errorf("%s has no topics", a.Abbrev)
		}
	}
	hs := byAb["HS"]
	if len(hs.Topics) != 2 {
		t.Errorf("HS topics = %v", hs.Topics)
	}
	rs := byAb["RS"]
	found := false
	for _, tp := range rs.Topics {
		if tp == TopicIMU {
			found = true
		}
	}
	if !found {
		t.Error("RS must include IMU")
	}
	do := byAb["DO"]
	if len(do.Topics) != 4 {
		t.Errorf("DO topics = %v", do.Topics)
	}
	if _, err := AppByAbbrev("HS"); err != nil {
		t.Error(err)
	}
	if _, err := AppByAbbrev("XX"); err == nil {
		t.Error("unknown abbrev accepted")
	}
}

func TestRandomPickDeterministic(t *testing.T) {
	a := RandomPick(1)
	b := RandomPick(1)
	if len(a) < 2 || len(a) > 4 {
		t.Errorf("pick size = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RandomPick not deterministic for equal seeds")
		}
	}
	c := RandomPick(2)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical picks (suspicious)")
	}
}

func TestWriteHandheldSLAMBag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hs.bag")
	n, err := WriteHandheldSLAMBag(path, SyntheticOptions{Seconds: 2, ScaleDown: 2000, Writer: rosbag.WriterOptions{ChunkThreshold: 16 * 1024}})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no messages written")
	}
	r, f, err := rosbag.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got := r.MessageCount(); got != n {
		t.Errorf("bag has %d messages, writer reported %d", got, n)
	}
	topics := r.Topics()
	if len(topics) != 7 {
		t.Errorf("bag has %d topics, want 7: %v", len(topics), topics)
	}
	// Rates: 2 s at 508 Hz IMU ≈ 1016 messages.
	if got := r.MessageCount(TopicIMU); got != 1016 {
		t.Errorf("IMU count = %d, want 1016", got)
	}
	if got := r.MessageCount(TopicDepthImage); got != 60 {
		t.Errorf("depth image count = %d, want 60", got)
	}
	// Every message decodes under its declared type.
	count := 0
	err = r.ReadMessages(rosbag.Query{Topics: []string{TopicIMU, TopicTF, TopicMarkerArray}}, func(m rosbag.MessageRef) error {
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Error("no structured messages read back")
	}
}

func TestTFStream(t *testing.T) {
	ms := TFStream(100, 7)
	if len(ms) != 100 {
		t.Fatalf("len = %d", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		a := ms[i-1].Transforms[0].Header.Stamp
		b := ms[i].Transforms[0].Header.Stamp
		if !a.Before(b) {
			t.Fatalf("timestamps not increasing at %d", i)
		}
	}
	if len(ms[0].Transforms) != 1 || ms[0].Transforms[0].ChildFrameID != "/kinect" {
		t.Error("transform content malformed")
	}
	again := TFStream(100, 7)
	if again[50].Transforms[0].Transform.Translation != ms[50].Transforms[0].Transform.Translation {
		t.Error("TFStream not deterministic")
	}
	if Fig2MessageCount != 49233 {
		t.Error("Fig2MessageCount drifted from the paper")
	}
}
