// Package workload reproduces the paper's evaluation workloads: the
// Handheld SLAM bag composition of Table II (seven topics, 98 % image
// data interleaved with high-rate structured streams) and the four
// real-world applications of Table III. It provides both paper-scale
// layout specs (for the cost simulators) and a real synthetic bag writer
// (for tests, examples and the CLI).
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/bagio"
	"repro/internal/layout"
	"repro/internal/msgs"
	"repro/internal/rosbag"
)

// Topic ids of Table II.
const (
	TopicDepthImage      = "/camera/depth/image"
	TopicRGBImage        = "/camera/rgb/image_color"
	TopicRGBCameraInfo   = "/camera/rgb/camera_info"
	TopicDepthCameraInfo = "/camera/depth/camera_info"
	TopicMarkerArray     = "/cortex_marker_array"
	TopicIMU             = "/imu"
	TopicTF              = "/tf"
)

// GB is a decimal gigabyte, matching the paper's size labels.
const GB = 1_000_000_000

// HandheldSLAMSpecs returns the Table II topic mix. Rates and sizes are
// derived from the table's message counts and data sizes for the 2.9 GB
// bag (≈48 s of recording at 30 Hz camera rate): scaling the target size
// scales duration, preserving the composition.
func HandheldSLAMSpecs() []layout.TopicSpec {
	return []layout.TopicSpec{
		{Name: TopicDepthImage, Type: "sensor_msgs/Image", RateHz: 30, MsgSize: 1_232_000},          // A: 1,429 msgs, 1.64 GB
		{Name: TopicRGBImage, Type: "sensor_msgs/Image", RateHz: 30, MsgSize: 923_000},              // B: 1,431 msgs, 1.23 GB
		{Name: TopicRGBCameraInfo, Type: "sensor_msgs/CameraInfo", RateHz: 30, MsgSize: 425},        // C: 1,432 msgs, 594 KB
		{Name: TopicDepthCameraInfo, Type: "sensor_msgs/CameraInfo", RateHz: 30, MsgSize: 425},      // D: 1,430 msgs, 594 KB
		{Name: TopicMarkerArray, Type: "visualization_msgs/MarkerArray", RateHz: 302, MsgSize: 580}, // E: 14,487 msgs, 8.4 MB
		{Name: TopicIMU, Type: "sensor_msgs/Imu", RateHz: 508, MsgSize: 345},                        // F: 24,367 msgs, 8.4 MB
		{Name: TopicTF, Type: "tf2_msgs/TFMessage", RateHz: 342, MsgSize: 220},                      // G: 16,411 msgs, 3.6 MB
	}
}

// App is one of the four real-world applications of Table III.
type App struct {
	Name   string
	Abbrev string
	Topics []string
}

// Apps returns the Table III applications. PA's topic set is a
// deterministic "random pick" (seeded) so experiment rows are stable.
func Apps() []App {
	return []App{
		{Name: "Handheld SLAM", Abbrev: "HS", Topics: []string{TopicDepthImage, TopicRGBImage}},
		{Name: "Robot SLAM", Abbrev: "RS", Topics: []string{TopicDepthImage, TopicRGBImage, TopicIMU}},
		{Name: "Dynamic Object", Abbrev: "DO", Topics: []string{TopicTF, TopicRGBImage, TopicRGBCameraInfo, TopicMarkerArray}},
		{Name: "Pre-analysis Algorithms", Abbrev: "PA", Topics: RandomPick(1)},
	}
}

// AppByAbbrev looks an application up by its Table III abbreviation.
func AppByAbbrev(ab string) (App, error) {
	for _, a := range Apps() {
		if a.Abbrev == ab {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("workload: unknown application %q", ab)
}

// RandomPick returns a deterministic pseudo-random topic subset of the
// Handheld SLAM mix, modeling the PA application's per-stage topic
// selection.
func RandomPick(seed int64) []string {
	specs := HandheldSLAMSpecs()
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(3) // 2-4 topics per analysis stage
	perm := rng.Perm(len(specs))
	out := make([]string, 0, n)
	for _, i := range perm[:n] {
		out = append(out, specs[i].Name)
	}
	return out
}

// HandheldSLAMBag lays out a Handheld SLAM bag of the given target size
// (e.g. 2.9*GB, 21*GB, 42*GB).
func HandheldSLAMBag(targetBytes int64) (*layout.Bag, error) {
	return layout.Generate(HandheldSLAMSpecs(), targetBytes, 0)
}

// SyntheticOptions configure the real bag writer.
type SyntheticOptions struct {
	// Seconds of recording to synthesize.
	Seconds int
	// ScaleDown divides image payload sizes so tests stay small while
	// preserving the structured/unstructured interleaving. 1 = paper
	// sizes. Zero selects 1000.
	ScaleDown int
	// Seed randomizes payload contents.
	Seed int64
	// Writer options passed through to the recorder.
	Writer rosbag.WriterOptions
}

func (o *SyntheticOptions) fill() {
	if o.Seconds <= 0 {
		o.Seconds = 5
	}
	if o.ScaleDown <= 0 {
		o.ScaleDown = 1000
	}
}

// WriteHandheldSLAMBag records a real bag file with the Table II topic
// mix (optionally scaled down) and returns the number of messages
// written.
func WriteHandheldSLAMBag(path string, opts SyntheticOptions) (uint64, error) {
	w, f, err := rosbag.Create(path, opts.Writer)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n, err := generateHandheldSLAM(opts, func(topic, _ string, t bagio.Time, m msgs.Message) error {
		return w.WriteMsg(topic, t, m)
	})
	if err != nil {
		return 0, err
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	return n, f.Close()
}

// Sink is the recording destination RecordHandheldSLAM feeds —
// structurally core.RecordSink (a rosbag.Writer, a core.Recorder, or a
// client.RecordStream), declared locally so workload stays independent
// of the container stack.
type Sink interface {
	AddConnection(topic, msgType string) (uint32, error)
	WriteMessage(conn uint32, t bagio.Time, data []byte) error
	Seal() error
}

// RecordHandheldSLAM streams the Table II mix into sink — the same
// synthetic recording WriteHandheldSLAMBag produces, but through the
// unified RecordSink surface so it lands in a container (live or
// classic) or on a remote daemon without a .bag detour. The sink is NOT
// sealed: the caller owns the seal (and any pacing around it).
func RecordHandheldSLAM(sink Sink, opts SyntheticOptions) (uint64, error) {
	conns := map[string]uint32{}
	var buf []byte
	return generateHandheldSLAM(opts, func(topic, msgType string, t bagio.Time, m msgs.Message) error {
		id, ok := conns[topic]
		if !ok {
			var err error
			if id, err = sink.AddConnection(topic, msgType); err != nil {
				return err
			}
			conns[topic] = id
		}
		buf = m.Marshal(buf[:0])
		return sink.WriteMessage(id, t, buf)
	})
}

// generateHandheldSLAM synthesizes the Table II message stream and
// hands each message to emit in recording order.
func generateHandheldSLAM(opts SyntheticOptions, emit func(topic, msgType string, t bagio.Time, m msgs.Message) error) (uint64, error) {
	opts.fill()
	rng := rand.New(rand.NewSource(opts.Seed))

	imgBytes := func(size int64) []byte {
		n := int(size) / opts.ScaleDown
		if n < 16 {
			n = 16
		}
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	base := int64(1_500_000_000) * 1e9 // epoch seconds ≈ 2017
	specs := HandheldSLAMSpecs()
	var n uint64
	// Emit message arrivals per topic per second, merged by time within
	// the second (close enough to a true global merge for a recorder).
	for s := 0; s < opts.Seconds; s++ {
		secNs := base + int64(s)*1e9
		for _, spec := range specs {
			perSec := int(spec.RateHz)
			for i := 0; i < perSec; i++ {
				t := bagio.TimeFromNanos(secNs + int64(i)*int64(1e9/float64(perSec)))
				hdr := msgs.Header{Seq: uint32(s*perSec + i), Stamp: t, FrameID: "/map"}
				var m msgs.Message
				switch spec.Type {
				case "sensor_msgs/Image":
					m = &msgs.Image{Header: hdr, Height: 480, Width: 640, Encoding: "rgb8", Step: 1920, Data: imgBytes(spec.MsgSize)}
				case "sensor_msgs/CameraInfo":
					ci := &msgs.CameraInfo{Header: hdr, Height: 480, Width: 640, DistortionModel: "plumb_bob", D: []float64{rng.NormFloat64(), 0, 0, 0, 0}}
					ci.K[0] = 525
					m = ci
				case "sensor_msgs/Imu":
					imu := &msgs.Imu{Header: hdr, Orientation: msgs.Identity()}
					imu.AngularVelocity = msgs.Vector3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
					imu.LinearAcceleration = msgs.Vector3{Z: -9.81 + rng.NormFloat64()*0.01}
					m = imu
				case "tf2_msgs/TFMessage":
					m = &msgs.TFMessage{Transforms: []msgs.TransformStamped{{
						Header: hdr, ChildFrameID: "/base_link",
						Transform: msgs.Transform{Translation: msgs.Vector3{X: float64(s) * 0.1}, Rotation: msgs.Identity()},
					}}}
				case "visualization_msgs/MarkerArray":
					m = &msgs.MarkerArray{Markers: []msgs.Marker{{
						Header: hdr, Namespace: "cortex", ID: int32(i), Type: msgs.MarkerCube,
						Pose:  msgs.Pose{Orientation: msgs.Identity()},
						Scale: msgs.Vector3{X: 1, Y: 1, Z: 1}, Color: msgs.ColorRGBA{R: 1, A: 1},
					}}}
				default:
					return 0, fmt.Errorf("workload: unhandled type %s", spec.Type)
				}
				if err := emit(spec.Name, spec.Type, t, m); err != nil {
					return 0, err
				}
				n++
			}
		}
	}
	return n, nil
}

// TFStream generates n TF messages for the Fig 2 insertion experiment
// (49,233 TF messages extracted from a Handheld SLAM bag).
func TFStream(n int, seed int64) []msgs.TFMessage {
	rng := rand.New(rand.NewSource(seed))
	out := make([]msgs.TFMessage, n)
	base := int64(1_500_000_000) * 1e9
	for i := range out {
		t := bagio.TimeFromNanos(base + int64(i)*3_000_000)
		out[i] = msgs.TFMessage{Transforms: []msgs.TransformStamped{{
			Header:       msgs.Header{Seq: uint32(i), Stamp: t, FrameID: "/world"},
			ChildFrameID: "/kinect",
			Transform: msgs.Transform{
				Translation: msgs.Vector3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()},
				Rotation:    msgs.Identity(),
			},
		}}}
	}
	return out
}

// Fig2MessageCount is the paper's Fig 2 insertion workload size.
const Fig2MessageCount = 49_233
