// Package vfs is BORA's FUSE-like front end (Fig 5a): it presents the
// traditional "bag is a file" abstraction over containers so that tools
// with no knowledge of BORA keep working. Writing <name>.bag through the
// front end captures the byte stream and re-organizes it into a
// container when the file is closed (the interception of Fig 6 step 1);
// opening <name>.bag reconstructs the standard bag byte stream from the
// container, so stock readers — including internal/rosbag — can parse
// it.
//
// Every front-end call passes through an interposition layer that counts
// operations and can charge a per-op overhead, modeling the FUSE 2.9
// user/kernel crossings the paper accepts as "some one-time overhead".
package vfs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/rosbag"
)

// OpStats counts front-end operations, the quantity a FUSE layer would
// translate into user/kernel crossings.
type OpStats struct {
	Creates  int
	Opens    int
	Reads    int
	Writes   int
	Closes   int
	Stats    int
	Readdirs int
	Removes  int
}

// fsObs holds the per-op latency instruments behind OpStats. All fields
// are nil (no-op) when the backend carries no obs registry.
type fsObs struct {
	create, open, read, write, close *obs.Op
	stat, readdir, remove            *obs.Op
}

// FS is a mounted BORA front end.
type FS struct {
	mu      sync.Mutex
	backend *core.BORA
	pool    *pool.Pool // optional shared open-handle pool
	workDir string     // spool area for in-flight writes and read snapshots
	stats   OpStats
	obs     fsObs
}

// Mount attaches a front end to a BORA back end, spooling through
// workDir (a temporary directory works). Per-op latency is recorded to
// the backend's obs registry (see core.Options.Obs) under vfs.* ops.
func Mount(backend *core.BORA, workDir string) (*FS, error) {
	return MountWithPool(backend, workDir, nil)
}

// MountWithPool is Mount serving bag opens through a shared handle
// pool: Stat and Open acquire cached handles (one tag-table build for
// all front-end clients of a bag) and Remove invalidates through the
// pool. A nil pool opens cold, exactly as Mount does.
func MountWithPool(backend *core.BORA, workDir string, p *pool.Pool) (*FS, error) {
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		return nil, fmt.Errorf("vfs: spool dir: %w", err)
	}
	reg := backend.Obs()
	return &FS{backend: backend, pool: p, workDir: workDir, obs: fsObs{
		create:  reg.Op("vfs.create"),
		open:    reg.Op("vfs.open"),
		read:    reg.Op("vfs.read"),
		write:   reg.Op("vfs.write"),
		close:   reg.Op("vfs.close"),
		stat:    reg.Op("vfs.stat"),
		readdir: reg.Op("vfs.readdir"),
		remove:  reg.Op("vfs.remove"),
	}}, nil
}

// openBag resolves a bag handle for a front-end operation: through the
// shared pool when one is mounted, cold otherwise.
func (fs *FS) openBag(base string, sp obs.Span) (*core.Bag, error) {
	if fs.pool != nil {
		return fs.pool.AcquireSpan(base, sp)
	}
	return fs.backend.OpenSpan(base, sp)
}

// Stats returns the accumulated op counts.
func (fs *FS) Stats() OpStats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// bagName validates and strips the .bag extension.
func bagName(name string) (string, error) {
	if !strings.HasSuffix(name, ".bag") {
		return "", fmt.Errorf("vfs: %q: front end only serves .bag files", name)
	}
	base := strings.TrimSuffix(filepath.Base(name), ".bag")
	if base == "" || strings.ContainsAny(base, "/\\") {
		return "", fmt.Errorf("vfs: invalid bag name %q", name)
	}
	return base, nil
}

// List returns the bag file names visible on the front end.
func (fs *FS) List() ([]string, error) {
	sp := fs.obs.readdir.Start()
	defer sp.End()
	fs.mu.Lock()
	fs.stats.Readdirs++
	fs.mu.Unlock()
	names, err := fs.backend.List()
	if err != nil {
		return nil, err
	}
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = n + ".bag"
	}
	sort.Strings(out)
	return out, nil
}

// Stat reports whether a bag exists and its logical size (the size of
// the reconstructed bag stream is not materialized; Stat reports the
// container's payload size, which is what analysis tools care about).
func (fs *FS) Stat(name string) (int64, error) {
	sp := fs.obs.stat.Start()
	defer sp.End()
	fs.mu.Lock()
	fs.stats.Stats++
	fs.mu.Unlock()
	base, err := bagName(name)
	if err != nil {
		return 0, err
	}
	bag, err := fs.openBag(base, sp)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, topic := range bag.Topics() {
		t, err := bag.Container().Topic(topic)
		if err != nil {
			return 0, err
		}
		sz, err := t.DataSize()
		if err != nil {
			return 0, err
		}
		total += sz
	}
	return total, nil
}

// WriteFile is an in-flight front-end write: bytes spool to the work
// directory and are organized into a container on Close. The spool is
// written through the backend's faultfs backend, so an injected fault
// or crash surfaces exactly where a real disk error would.
type WriteFile struct {
	fs     *FS
	base   string
	spool  faultfs.File
	path   string
	closed bool
}

// Create starts writing a bag through the front end. Each in-flight
// write spools to its own unique temporary file, so concurrent Creates
// of the same bag name cannot truncate each other's spool; the conflict
// is detected at Close time, when the back end refuses a second
// container of the same name.
func (fs *FS) Create(name string) (*WriteFile, error) {
	sp := fs.obs.create.Start()
	defer sp.End()
	fs.mu.Lock()
	fs.stats.Creates++
	fs.mu.Unlock()
	base, err := bagName(name)
	if err != nil {
		return nil, err
	}
	f, err := fs.backend.FS().CreateTemp(fs.workDir, "spool-"+base+"-*.bag")
	if err != nil {
		return nil, err
	}
	return &WriteFile{fs: fs, base: base, spool: f, path: f.Name()}, nil
}

// Write implements io.Writer.
func (w *WriteFile) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("vfs: write after close")
	}
	sp := w.fs.obs.write.Start()
	w.fs.mu.Lock()
	w.fs.stats.Writes++
	w.fs.mu.Unlock()
	n, err := w.spool.Write(p)
	sp.EndBytes(int64(n))
	return n, err
}

// Close finishes the write: the spooled bag is duplicated into a BORA
// container (the one-time data organizer pass) and the spool removed.
func (w *WriteFile) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	sp := w.fs.obs.close.Start()
	defer sp.End()
	w.fs.mu.Lock()
	w.fs.stats.Closes++
	w.fs.mu.Unlock()
	// Unlink the spool no matter how Close exits: an error from the
	// spool close below must not leak the file.
	defer os.Remove(w.path)
	if err := w.spool.Close(); err != nil {
		return err
	}
	if _, _, err := w.fs.backend.DuplicateSpan(w.path, w.base, sp); err != nil {
		return fmt.Errorf("vfs: organize %s: %w", w.base, err)
	}
	return nil
}

// ReadFile serves the reconstructed bag byte stream.
type ReadFile struct {
	fs     *FS
	f      *os.File
	size   int64
	closed bool
}

// Open serves a logical bag file for reading. The bag stream is
// reconstructed from the container into a snapshot once per Open; stock
// bag readers can then parse it unchanged. Each Open materializes its
// own unique snapshot file, so concurrent Opens of the same bag never
// truncate each other's stream and each Close unlinks only its own
// snapshot.
func (fs *FS) Open(name string) (*ReadFile, error) {
	sp := fs.obs.open.Start()
	fs.mu.Lock()
	fs.stats.Opens++
	fs.mu.Unlock()
	base, err := bagName(name)
	if err != nil {
		sp.EndErr(err)
		return nil, err
	}
	bag, err := fs.openBag(base, sp)
	if err != nil {
		sp.EndErr(err)
		return nil, err
	}
	f, err := os.CreateTemp(fs.workDir, "snap-"+base+"-*.bag")
	if err != nil {
		sp.EndErr(err)
		return nil, err
	}
	fail := func(err error) (*ReadFile, error) {
		f.Close()
		os.Remove(f.Name())
		sp.EndErr(err)
		return nil, err
	}
	if err := bag.ExportSpan(f, rosbag.WriterOptions{}, sp); err != nil {
		return fail(fmt.Errorf("vfs: reconstruct %s: %w", base, err))
	}
	st, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fail(err)
	}
	sp.EndBytes(st.Size())
	return &ReadFile{fs: fs, f: f, size: st.Size()}, nil
}

// Size returns the reconstructed bag's byte size.
func (r *ReadFile) Size() int64 { return r.size }

// Read implements io.Reader.
func (r *ReadFile) Read(p []byte) (int, error) {
	if r.closed {
		return 0, fmt.Errorf("vfs: read after close")
	}
	sp := r.fs.obs.read.Start()
	r.fs.mu.Lock()
	r.fs.stats.Reads++
	r.fs.mu.Unlock()
	n, err := r.f.Read(p)
	sp.EndBytes(int64(n))
	return n, err
}

// ReadAt implements io.ReaderAt.
func (r *ReadFile) ReadAt(p []byte, off int64) (int, error) {
	if r.closed {
		return 0, fmt.Errorf("vfs: read after close")
	}
	sp := r.fs.obs.read.Start()
	r.fs.mu.Lock()
	r.fs.stats.Reads++
	r.fs.mu.Unlock()
	n, err := r.f.ReadAt(p, off)
	sp.EndBytes(int64(n))
	return n, err
}

// Close releases the snapshot.
func (r *ReadFile) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	sp := r.fs.obs.close.Start()
	defer sp.End()
	r.fs.mu.Lock()
	r.fs.stats.Closes++
	r.fs.mu.Unlock()
	path := r.f.Name()
	if err := r.f.Close(); err != nil {
		return err
	}
	return os.Remove(path)
}

// Remove deletes a bag through the front end.
func (fs *FS) Remove(name string) error {
	sp := fs.obs.remove.Start()
	fs.mu.Lock()
	fs.stats.Removes++
	fs.mu.Unlock()
	base, err := bagName(name)
	if err != nil {
		sp.EndErr(err)
		return err
	}
	if fs.pool != nil {
		err = fs.pool.Remove(base)
	} else {
		err = fs.backend.Remove(base)
	}
	sp.EndErr(err)
	return err
}
