package vfs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/rosbag"
	"repro/internal/workload"
)

func mountTestFS(t *testing.T) *FS {
	t.Helper()
	dir := t.TempDir()
	backend, err := core.New(filepath.Join(dir, "backend"), core.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(backend, filepath.Join(dir, "spool"))
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// writeSourceBag produces a small real Handheld-SLAM-like bag on disk.
func writeSourceBag(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "src.bag")
	if _, err := workload.WriteHandheldSLAMBag(path, workload.SyntheticOptions{Seconds: 1, ScaleDown: 4000}); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWriteThroughFrontEnd(t *testing.T) {
	fs := mountTestFS(t)
	src := writeSourceBag(t, t.TempDir())

	// "Put bag file to the mount point": stream it through the front end.
	w, err := fs.Create("sample.bag")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(raw[:len(raw)/2]); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(raw[len(raw)/2:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close (organize): %v", err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Error("write after close accepted")
	}

	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "sample.bag" {
		t.Fatalf("List = %v", names)
	}
	if sz, err := fs.Stat("sample.bag"); err != nil || sz <= 0 {
		t.Errorf("Stat = %d, %v", sz, err)
	}
	st := fs.Stats()
	if st.Creates != 1 || st.Writes != 2 || st.Closes == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReadBackThroughFrontEndWithStockReader(t *testing.T) {
	fs := mountTestFS(t)
	srcDir := t.TempDir()
	src := writeSourceBag(t, srcDir)
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	w, err := fs.Create("roundtrip.bag")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The reconstructed stream must parse with the stock reader and carry
	// the same messages.
	rf, err := fs.Open("roundtrip.bag")
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	if rf.Size() <= 0 {
		t.Fatal("empty reconstructed bag")
	}
	r, err := rosbag.OpenReader(rf, rf.Size())
	if err != nil {
		t.Fatalf("stock reader on reconstructed bag: %v", err)
	}
	orig, f, err := rosbag.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got, want := r.MessageCount(), orig.MessageCount(); got != want {
		t.Errorf("reconstructed has %d messages, source %d", got, want)
	}
	if got, want := len(r.Topics()), len(orig.Topics()); got != want {
		t.Errorf("reconstructed has %d topics, source %d", got, want)
	}
	count := 0
	if err := r.ReadMessages(rosbag.Query{Topics: []string{workload.TopicIMU}}, func(m rosbag.MessageRef) error {
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want := int(orig.MessageCount(workload.TopicIMU)); count != want {
		t.Errorf("imu messages = %d, want %d", count, want)
	}
}

// TestConcurrentOpensDoNotClobber is the regression test for the fixed
// snapshot path: Open used to materialize every reader's snapshot at
// workDir/snap-<base>.bag, so concurrent Opens of the same bag truncated
// each other's stream mid-read and a Close unlinked a snapshot another
// reader was still using. Each of the goroutines below must see a
// complete, parseable bag with the full message count; run with -race.
func TestConcurrentOpensDoNotClobber(t *testing.T) {
	fs := mountTestFS(t)
	src := writeSourceBag(t, t.TempDir())
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	w, err := fs.Create("shared.bag")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	orig, f, err := rosbag.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	want := orig.MessageCount()
	f.Close()

	const readers = 6
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rf, err := fs.Open("shared.bag")
			if err != nil {
				errs <- err
				return
			}
			defer rf.Close()
			r, err := rosbag.OpenReader(rf, rf.Size())
			if err != nil {
				errs <- fmt.Errorf("parse snapshot: %w", err)
				return
			}
			var n uint64
			if err := r.ReadMessages(rosbag.Query{}, func(m rosbag.MessageRef) error {
				n++
				return nil
			}); err != nil {
				errs <- fmt.Errorf("read snapshot: %w", err)
				return
			}
			if n != want {
				errs <- fmt.Errorf("reader saw %d messages, want %d", n, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Every Close unlinked its own snapshot: the spool dir is empty again.
	ents, err := os.ReadDir(fs.workDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("spool dir not empty after all readers closed: %v", ents)
	}
}

// TestConcurrentCreatesDoNotClobberSpool is the write-side half of the
// same bug: two in-flight Creates of one bag name used to share
// workDir/spool-<base>.bag, interleaving their bytes into garbage. Now
// each spools privately; the name conflict surfaces at Close, when the
// back end refuses a second container, and the surviving bag must be
// intact.
func TestConcurrentCreatesDoNotClobberSpool(t *testing.T) {
	fs := mountTestFS(t)
	src := writeSourceBag(t, t.TempDir())
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	files := make([]*WriteFile, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		w, err := fs.Create("contended.bag")
		if err != nil {
			t.Fatal(err)
		}
		files[i] = w
		wg.Add(1)
		go func(w *WriteFile) {
			defer wg.Done()
			// Chunked writes maximize interleaving windows.
			for off := 0; off < len(raw); off += 4096 {
				end := off + 4096
				if end > len(raw) {
					end = len(raw)
				}
				if _, err := w.Write(raw[off:end]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Closes are serialized: exactly the first organizes the container,
	// the rest must fail on the name conflict instead of corrupting it.
	if err := files[0].Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	for i := 1; i < writers; i++ {
		if err := files[i].Close(); err == nil {
			t.Errorf("Close %d should have failed on the name conflict", i)
		}
	}
	rf, err := fs.Open("contended.bag")
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	r, err := rosbag.OpenReader(rf, rf.Size())
	if err != nil {
		t.Fatalf("surviving bag does not parse: %v", err)
	}
	orig, f, err := rosbag.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got, want := r.MessageCount(), orig.MessageCount(); got != want {
		t.Errorf("surviving bag has %d messages, want %d", got, want)
	}
}

func TestFrontEndValidation(t *testing.T) {
	fs := mountTestFS(t)
	if _, err := fs.Create("noext"); err == nil {
		t.Error("non-.bag name accepted")
	}
	if _, err := fs.Open("missing.bag"); err == nil {
		t.Error("missing bag opened")
	}
	if _, err := fs.Stat("missing.bag"); err == nil {
		t.Error("missing bag statted")
	}
	if err := fs.Remove("missing.bag"); err == nil {
		t.Error("missing bag removed")
	}
	if _, err := fs.Create(".bag"); err == nil {
		t.Error("empty base name accepted")
	}
}

func TestRemoveThroughFrontEnd(t *testing.T) {
	fs := mountTestFS(t)
	src := writeSourceBag(t, t.TempDir())
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	w, err := fs.Create("gone.bag")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("gone.bag"); err != nil {
		t.Fatal(err)
	}
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Errorf("List after remove = %v", names)
	}
	if st := fs.Stats(); st.Removes != 1 {
		t.Errorf("stats.Removes = %d, want 1", st.Removes)
	}
}

// TestConcurrentOpenRemoveRace races Opens of a bag against its Remove
// (run under -race in CI). Every Open must either serve a complete
// snapshot — isolated from the concurrent unlink — or fail cleanly; no
// goroutine may observe a torn stream, and no snapshot or spool file
// may leak from the work directory afterwards.
func TestConcurrentOpenRemoveRace(t *testing.T) {
	fs := mountTestFS(t)
	src := writeSourceBag(t, t.TempDir())
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	w, err := fs.Create("contested.bag")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	const readers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			r, err := fs.Open("contested.bag")
			if err != nil {
				errs[i] = nil // clean failure: bag already removed
				return
			}
			defer r.Close()
			// A served snapshot must parse as a complete bag even though
			// the container is being unlinked underneath.
			br, err := rosbag.OpenReader(r, r.Size())
			if err != nil {
				errs[i] = fmt.Errorf("reader %d: snapshot does not parse: %w", i, err)
				return
			}
			if br.MessageCount() == 0 {
				errs[i] = fmt.Errorf("reader %d: snapshot has no messages", i)
			}
		}(i)
	}
	wg.Add(1)
	var removeErr error
	go func() {
		defer wg.Done()
		<-start
		removeErr = fs.Remove("contested.bag")
	}()
	close(start)
	wg.Wait()
	if removeErr != nil {
		t.Fatalf("Remove: %v", removeErr)
	}
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	ents, err := os.ReadDir(fs.workDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		t.Errorf("work dir leaked %s", ent.Name())
	}
}

// TestSpoolNeverLeaksUnderInjectedFaults sweeps an injected I/O failure
// across every backend operation of a front-end write and asserts the
// spool file never outlives Close. This is the regression test for the
// lost-spool-file bug: Close used to register the spool unlink only
// after the spool's own Close error return, so a failing close leaked
// the file.
func TestSpoolNeverLeaksUnderInjectedFaults(t *testing.T) {
	src := writeSourceBag(t, t.TempDir())
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	run := func(plan faultfs.Plan) (*faultfs.Injector, string, error) {
		dir := t.TempDir()
		in := faultfs.NewInjector(faultfs.OS, plan)
		backend, err := core.New(filepath.Join(dir, "backend"), core.Options{FS: in, Synchronous: true})
		if err != nil {
			t.Fatal(err)
		}
		fs, err := Mount(backend, filepath.Join(dir, "spool"))
		if err != nil {
			t.Fatal(err)
		}
		spoolDir := filepath.Join(dir, "spool")
		w, err := fs.Create("faulty.bag")
		if err != nil {
			return in, spoolDir, err
		}
		if _, err := w.Write(raw); err != nil {
			// A real caller closes on write error; the spool must go away.
			w.Close()
			return in, spoolDir, err
		}
		return in, spoolDir, w.Close()
	}

	in, _, err := run(faultfs.Plan{Seed: 1})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	total := in.Ops()
	if total < 10 {
		t.Fatalf("suspiciously few backend ops: %d", total)
	}
	stride := total/64 + 1
	for n := int64(1); n <= total; n += stride {
		_, spoolDir, runErr := run(faultfs.Plan{Seed: 11, FailAt: n})
		ents, err := os.ReadDir(spoolDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range ents {
			if strings.HasPrefix(ent.Name(), "spool-") {
				t.Fatalf("FailAt=%d (err=%v): leaked spool file %s", n, runErr, ent.Name())
			}
		}
	}
}
