package pool

import (
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestHotHandleEvictionProtection: an entry whose bag is hot in the
// shared rate tracker survives LRU pressure — the pool evicts a colder
// entry instead — but protection degrades to plain LRU when everything
// resident is hot (it bends the policy, never wedges it).
func TestHotHandleEvictionProtection(t *testing.T) {
	reg := obs.NewRegistry()
	b := newBackend(t, reg)
	src := filepath.Join(t.TempDir(), "src.bag")
	writeBag(t, src, 2, 10)
	for _, name := range []string{"bag1", "bag2", "bag3"} {
		duplicate(t, b, src, name)
	}
	hot := obs.NewRateTracker(0, 0)
	p := New(b, Options{MaxBags: 2, HotTracker: hot, HotQPS: 8})

	mustAcquire := func(name string) {
		t.Helper()
		if _, err := p.Acquire(name); err != nil {
			t.Fatal(err)
		}
	}
	mustAcquire("bag1")
	mustAcquire("bag2")
	// bag1 is the LRU victim-by-age, but it is hot: eviction must take
	// bag2 instead when bag3 arrives.
	for i := 0; i < 100; i++ {
		hot.Note("bag1")
	}
	mustAcquire("bag3")

	s := p.Stats()
	if s.HandlesResident != 2 {
		t.Fatalf("resident = %d, want 2", s.HandlesResident)
	}
	missesBefore := s.HandleMisses
	mustAcquire("bag1") // still resident: a hit, no cold open
	if s2 := p.Stats(); s2.HandleMisses != missesBefore {
		t.Error("hot bag1 was evicted despite protection")
	}
	mustAcquire("bag2") // evicted: a miss
	if s2 := p.Stats(); s2.HandleMisses != missesBefore+1 {
		t.Error("cold bag2 survived eviction; the wrong victim was chosen")
	}

	// All-hot fallback: with every resident entry hot, pressure still
	// evicts (plain LRU) rather than letting the pool exceed MaxBags.
	for i := 0; i < 100; i++ {
		hot.Note("bag2")
		hot.Note("bag3")
	}
	mustAcquire("bag3")
	evictionsBefore := p.Stats().HandleEvictions
	mustAcquire("bag1")
	s3 := p.Stats()
	if s3.HandlesResident != 2 {
		t.Fatalf("all-hot: resident = %d, want 2", s3.HandlesResident)
	}
	if s3.HandleEvictions != evictionsBefore+1 {
		t.Errorf("all-hot: evictions = %d, want %d", s3.HandleEvictions, evictionsBefore+1)
	}
}
