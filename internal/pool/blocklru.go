package pool

import (
	"container/list"
	"sync"

	"repro/internal/container"
	"repro/internal/obs"
)

// BlockLRU is the pool's bounded block cache: a byte-capped LRU of
// fixed-size topic-data blocks implementing container.BlockCache. One
// instance is shared by every container the pool opens; keys carry the
// container generation, so blocks of a removed or rebuilt container
// stop being referenced and age out rather than needing invalidation.
// Safe for concurrent use.
type BlockLRU struct {
	blockSize int64
	capacity  int64

	hitsC      *obs.Counter // pool.block_hits
	missesC    *obs.Counter // pool.block_misses
	evictionsC *obs.Counter // pool.block_evictions
	hitBytesC  *obs.Counter // pool.block_hit_bytes
	fillBytesC *obs.Counter // pool.block_fill_bytes
	bytesG     *obs.Gauge   // pool.block_bytes

	mu        sync.Mutex
	size      int64
	items     map[container.BlockKey]*list.Element
	lru       *list.List // of *blockItem; front = most recently used
	hits      int64
	misses    int64
	evictions int64
	hitBytes  int64
	fillBytes int64
}

type blockItem struct {
	key  container.BlockKey
	data []byte
}

// NewBlockLRU builds a block cache holding at most capacity payload
// bytes in blockSize-wide blocks, registering its metrics on reg (a
// nil registry disables recording, not the cache).
func NewBlockLRU(capacity, blockSize int64, reg *obs.Registry) *BlockLRU {
	return &BlockLRU{
		blockSize:  blockSize,
		capacity:   capacity,
		hitsC:      reg.Counter("pool.block_hits"),
		missesC:    reg.Counter("pool.block_misses"),
		evictionsC: reg.Counter("pool.block_evictions"),
		hitBytesC:  reg.Counter("pool.block_hit_bytes"),
		fillBytesC: reg.Counter("pool.block_fill_bytes"),
		bytesG:     reg.Gauge("pool.block_bytes"),
		items:      map[container.BlockKey]*list.Element{},
		lru:        list.New(),
	}
}

// BlockSize returns the fixed block width.
func (c *BlockLRU) BlockSize() int64 { return c.blockSize }

// Get returns the cached block, promoting it to most-recently-used.
// The returned slice must not be mutated.
func (c *BlockLRU) Get(key container.BlockKey) ([]byte, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		c.mu.Unlock()
		c.missesC.Inc()
		return nil, false
	}
	c.lru.MoveToFront(el)
	it := el.Value.(*blockItem)
	c.hits++
	c.hitBytes += int64(len(it.data))
	c.mu.Unlock()
	c.hitsC.Inc()
	c.hitBytesC.Add(int64(len(it.data)))
	return it.data, true
}

// Put inserts (or refreshes) a block, taking ownership of data, then
// evicts from the cold end until the cache fits its byte capacity. A
// block wider than the whole capacity is not cached.
func (c *BlockLRU) Put(key container.BlockKey, data []byte) {
	n := int64(len(data))
	if n > c.capacity {
		return
	}
	var evictedBlocks int64
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		it := el.Value.(*blockItem)
		c.size += n - int64(len(it.data))
		it.data = data
		c.lru.MoveToFront(el)
	} else {
		c.items[key] = c.lru.PushFront(&blockItem{key: key, data: data})
		c.size += n
	}
	c.fillBytes += n
	for c.size > c.capacity {
		back := c.lru.Back()
		it := back.Value.(*blockItem)
		c.lru.Remove(back)
		delete(c.items, it.key)
		c.size -= int64(len(it.data))
		c.evictions++
		evictedBlocks++
	}
	size := c.size
	c.mu.Unlock()
	c.fillBytesC.Add(n)
	c.evictionsC.Add(evictedBlocks)
	c.bytesG.Set(size)
}

// BlockStats is a point-in-time summary of a BlockLRU.
type BlockStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	HitBytes  int64 // payload bytes served from cache
	FillBytes int64 // payload bytes inserted
	Resident  int64 // payload bytes currently cached
	Blocks    int   // blocks currently cached
}

// Stats returns the cache's current counters.
func (c *BlockLRU) Stats() BlockStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return BlockStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		HitBytes:  c.hitBytes,
		FillBytes: c.fillBytes,
		Resident:  c.size,
		Blocks:    c.lru.Len(),
	}
}
