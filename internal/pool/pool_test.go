package pool

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/bagio"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/msgs"
	"repro/internal/obs"
	"repro/internal/rosbag"
)

// writeBag writes a source bag with `topics` IMU topics of `per`
// messages each. Many small topics make a cold open expensive (one
// connection load per topic plus the tag-table build) while queries
// stay cheap — the shape the handle cache is for.
func writeBag(t *testing.T, path string, topics, per int) {
	t.Helper()
	w, f, err := rosbag.Create(path, rosbag.WriterOptions{ChunkThreshold: 4096})
	if err != nil {
		t.Fatal(err)
	}
	base := int64(1_000_000_000_000_000_000)
	for i := 0; i < topics; i++ {
		topic := fmt.Sprintf("/sensor%02d", i)
		for j := 0; j < per; j++ {
			ts := bagio.TimeFromNanos(base + int64(j)*1e8)
			m := &msgs.Imu{Header: msgs.Header{Seq: uint32(j), Stamp: ts, FrameID: topic}}
			if err := w.WriteMsg(topic, ts, m); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func newBackend(t *testing.T, reg *obs.Registry) *core.BORA {
	t.Helper()
	b, err := core.New(filepath.Join(t.TempDir(), "backend"), core.Options{TimeWindow: time.Second, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// duplicate organizes src into the backend under name.
func duplicate(t *testing.T, b *core.BORA, src, name string) {
	t.Helper()
	if _, _, err := b.Duplicate(src, name); err != nil {
		t.Fatalf("Duplicate(%s): %v", name, err)
	}
}

// TestAcquireSingleflight: N concurrent Acquires of one cold bag must
// share a single handle and pay exactly one cold open (one core.open op
// in the registry — one tag-table build).
func TestAcquireSingleflight(t *testing.T) {
	reg := obs.NewRegistry()
	b := newBackend(t, reg)
	src := filepath.Join(t.TempDir(), "src.bag")
	writeBag(t, src, 3, 20)
	duplicate(t, b, src, "bag1")
	p := New(b, Options{})

	prev := reg.Snapshot()
	const clients = 16
	handles := make([]*core.Bag, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			handles[i], errs[i] = p.Acquire("bag1")
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("Acquire[%d]: %v", i, errs[i])
		}
		if handles[i] != handles[0] {
			t.Fatalf("Acquire[%d] returned a distinct handle", i)
		}
	}
	delta := reg.Snapshot().Delta(prev)
	if got := delta.Ops["core.open"].Count; got != 1 {
		t.Fatalf("%d concurrent Acquires performed %d cold opens, want 1", clients, got)
	}
	s := p.Stats()
	if s.HandleMisses != 1 || s.HandleHits != clients-1 {
		t.Fatalf("stats = %d misses / %d hits, want 1 / %d", s.HandleMisses, s.HandleHits, clients-1)
	}
	if got := delta.Counters["pool.handle_hits"]; got != clients-1 {
		t.Fatalf("pool.handle_hits counter = %d, want %d", got, clients-1)
	}
	if got := delta.Gauges["pool.handles_resident"]; got != 1 {
		t.Fatalf("pool.handles_resident gauge = %d, want 1", got)
	}
}

// TestEvictionLRU: past MaxBags the coldest handle falls out and a
// re-Acquire of it is a fresh miss.
func TestEvictionLRU(t *testing.T) {
	b := newBackend(t, nil)
	src := filepath.Join(t.TempDir(), "src.bag")
	writeBag(t, src, 3, 10)
	for _, name := range []string{"a", "b", "c"} {
		duplicate(t, b, src, name)
	}
	p := New(b, Options{MaxBags: 2})
	for _, name := range []string{"a", "b"} {
		if _, err := p.Acquire(name); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a so b is the LRU victim when c arrives.
	if _, err := p.Acquire("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Acquire("c"); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.HandleEvictions != 1 || s.HandlesResident != 2 {
		t.Fatalf("after eviction: %d evictions, %d resident, want 1, 2", s.HandleEvictions, s.HandlesResident)
	}
	// a survived (recently used), b did not.
	if _, err := p.Acquire("a"); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().HandleHits; got != s.HandleHits+1 {
		t.Fatalf("re-Acquire of retained bag was not a hit (hits %d -> %d)", s.HandleHits, got)
	}
	if _, err := p.Acquire("b"); err != nil {
		t.Fatal(err)
	}
	s2 := p.Stats()
	if s2.HandleMisses != s.HandleMisses+1 {
		t.Fatalf("re-Acquire of evicted bag was not a miss (misses %d -> %d)", s.HandleMisses, s2.HandleMisses)
	}
}

// TestInvalidationAfterRepair: a Repair reseals the container under a
// fresh generation; the staleness probe must refuse the cached handle
// and open fresh, counting one invalidation.
func TestInvalidationAfterRepair(t *testing.T) {
	b := newBackend(t, nil)
	src := filepath.Join(t.TempDir(), "src.bag")
	writeBag(t, src, 3, 20)
	duplicate(t, b, src, "bag1")
	p := New(b, Options{})
	h1, err := p.Acquire("bag1")
	if err != nil {
		t.Fatal(err)
	}
	if h2, err := p.Acquire("bag1"); err != nil || h2 != h1 {
		t.Fatalf("pre-repair re-Acquire: handle %p vs %p, err %v", h2, h1, err)
	}
	// Dirty the container (abandoned atomic-write temp), then Repair —
	// which reseals under a new generation.
	root := filepath.Join(b.Root(), "bag1")
	if err := os.WriteFile(filepath.Join(root, ".tmp-debris"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := container.Repair(root)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("post-repair findings: %v", rep.Findings)
	}
	h3, err := p.Acquire("bag1")
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("Acquire served the pre-repair handle after the container was resealed")
	}
	s := p.Stats()
	if s.HandleInvalidations != 1 {
		t.Fatalf("HandleInvalidations = %d, want 1", s.HandleInvalidations)
	}
	if s.HandleHits != 1 || s.HandleMisses != 2 {
		t.Fatalf("stats = %d hits / %d misses, want 1 / 2", s.HandleHits, s.HandleMisses)
	}
}

// TestInvalidationAfterRemoveAndReduplicate covers both removal paths:
// through the pool (immediate invalidation) and out-of-band behind its
// back (caught by the generation probe one Acquire later).
func TestInvalidationAfterRemoveAndReduplicate(t *testing.T) {
	b := newBackend(t, nil)
	src := filepath.Join(t.TempDir(), "src.bag")
	writeBag(t, src, 3, 20)
	duplicate(t, b, src, "bag1")
	p := New(b, Options{})
	h1, err := p.Acquire("bag1")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Remove("bag1"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Acquire("bag1"); err == nil {
		t.Fatal("Acquire of a removed bag succeeded")
	}
	duplicate(t, b, src, "bag1")
	h2, err := p.Acquire("bag1")
	if err != nil {
		t.Fatal(err)
	}
	if h2 == h1 {
		t.Fatal("Acquire served the pre-remove handle for the re-duplicated bag")
	}
	// Out-of-band: remove + re-duplicate directly on the backend. The
	// pooled handle is now stale; the probe must detect the new
	// generation and reopen.
	if err := b.Remove("bag1"); err != nil {
		t.Fatal(err)
	}
	duplicate(t, b, src, "bag1")
	h3, err := p.Acquire("bag1")
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h2 {
		t.Fatal("Acquire served a stale handle after out-of-band remove + re-duplicate")
	}
	if n, err := h3.MessageCount(); err != nil || n != 60 {
		t.Fatalf("fresh handle MessageCount = %d, %v, want 60", n, err)
	}
}

// TestCachedReopenSpeedup is the acceptance criterion: re-acquiring a
// pooled handle must be at least 10x faster than a cold open. The probe
// is one ~200-byte meta read; a cold open is a readdir plus per-topic
// connection loads plus the tag-table build.
func TestCachedReopenSpeedup(t *testing.T) {
	b := newBackend(t, nil)
	src := filepath.Join(t.TempDir(), "src.bag")
	writeBag(t, src, 48, 5)
	duplicate(t, b, src, "bag1")
	p := New(b, Options{})
	if _, err := p.Acquire("bag1"); err != nil { // warm the pool
		t.Fatal(err)
	}
	const rounds = 32
	measure := func(open func() error) time.Duration {
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if err := open(); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	// Best of three to shrug off scheduler noise on loaded CI machines.
	best := 0.0
	var cold, cached time.Duration
	for attempt := 0; attempt < 3; attempt++ {
		cold = measure(func() error { _, err := b.Open("bag1"); return err })
		cached = measure(func() error { _, err := p.Acquire("bag1"); return err })
		if ratio := float64(cold) / float64(cached); ratio > best {
			best = ratio
		}
		if best >= 10 {
			break
		}
	}
	t.Logf("cold %v vs cached %v per %d reopens (best ratio %.1fx)", cold, cached, rounds, best)
	if best < 10 {
		t.Fatalf("cached reopen only %.1fx faster than cold open, want >= 10x", best)
	}
	s := p.Stats()
	if s.HandleHits < rounds {
		t.Fatalf("HandleHits = %d, want >= %d (cached path not exercised)", s.HandleHits, rounds)
	}
}

// TestBlockCacheRepeatQuery: the second identical query over a pooled
// handle must be served (at least partly) from the block cache, with
// identical bytes.
func TestBlockCacheRepeatQuery(t *testing.T) {
	b := newBackend(t, nil)
	src := filepath.Join(t.TempDir(), "src.bag")
	writeBag(t, src, 4, 50)
	duplicate(t, b, src, "bag1")
	p := New(b, Options{BlockSize: 4096})
	bag, err := p.Acquire("bag1")
	if err != nil {
		t.Fatal(err)
	}
	scan := func() []string {
		var out []string
		err := bag.Query(core.QuerySpec{}, func(m core.MessageRef) error {
			out = append(out, m.Conn.Topic+"\x00"+string(m.Data))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := scan()
	s1 := p.Stats().Block
	if s1.FillBytes == 0 || s1.Misses == 0 {
		t.Fatalf("first scan filled nothing: %+v", s1)
	}
	second := scan()
	s2 := p.Stats().Block
	if s2.Hits <= s1.Hits {
		t.Fatalf("second scan hit the block cache %d times, want more than %d", s2.Hits, s1.Hits)
	}
	if len(first) != len(second) || len(first) != 4*50 {
		t.Fatalf("scan sizes differ: %d vs %d, want 200", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("message %d differs between cold and cached scans", i)
		}
	}
}

// TestBlockLRUAccounting unit-tests the byte-capped LRU: eviction from
// the cold end, refresh-in-place, and the oversized-block guard.
func TestBlockLRUAccounting(t *testing.T) {
	c := NewBlockLRU(1024, 256, nil)
	key := func(i int) container.BlockKey {
		return container.BlockKey{Path: "p", Gen: 1, Block: int64(i)}
	}
	block := func(b byte) []byte { return []byte{b, b, b, b} }
	for i := 0; i < 4; i++ {
		c.Put(key(i), make([]byte, 256))
	}
	if s := c.Stats(); s.Resident != 1024 || s.Blocks != 4 || s.Evictions != 0 {
		t.Fatalf("after fill: %+v", s)
	}
	// Promote block 0 so block 1 is the victim.
	if _, ok := c.Get(key(0)); !ok {
		t.Fatal("resident block missed")
	}
	c.Put(key(4), make([]byte, 256))
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("LRU victim still resident")
	}
	if _, ok := c.Get(key(0)); !ok {
		t.Fatal("promoted block was evicted")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Resident != 1024 {
		t.Fatalf("after eviction: %+v", s)
	}
	// Refresh-in-place must adjust size, not duplicate.
	c.Put(key(4), block('x'))
	if s := c.Stats(); s.Blocks != 4 || s.Resident != 3*256+4 {
		t.Fatalf("after refresh: %+v", s)
	}
	if data, ok := c.Get(key(4)); !ok || string(data) != "xxxx" {
		t.Fatalf("refreshed block = %q, %v", data, ok)
	}
	// A block wider than the whole capacity must be refused.
	c.Put(key(99), make([]byte, 2048))
	if _, ok := c.Get(key(99)); ok {
		t.Fatal("oversized block was cached")
	}
}

// TestPoolConcurrentMixedWorkload runs readers against a churning
// backend — Acquire + Query racing Remove, re-Duplicate, Invalidate and
// LRU eviction — and expects no panics or races (run under -race) and a
// consistent pool afterwards. Read errors are expected while a bag is
// mid-churn; corruption is not.
func TestPoolConcurrentMixedWorkload(t *testing.T) {
	b := newBackend(t, nil)
	src := filepath.Join(t.TempDir(), "src.bag")
	writeBag(t, src, 4, 25)
	names := []string{"r0", "r1", "r2"}
	for _, name := range names {
		duplicate(t, b, src, name)
	}
	p := New(b, Options{MaxBags: 2}) // force eviction churn too
	var wg sync.WaitGroup
	const readers, iters = 8, 40
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := names[(r+i)%len(names)]
				bag, err := p.Acquire(name)
				if err != nil {
					continue // mid-churn: bag may be gone right now
				}
				_ = bag.Query(core.QuerySpec{Topics: []string{"/sensor00"}}, func(core.MessageRef) error { return nil })
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := p.Remove("r2"); err != nil {
				t.Errorf("Remove: %v", err)
				return
			}
			if _, _, err := b.Duplicate(src, "r2"); err != nil {
				t.Errorf("re-Duplicate: %v", err)
				return
			}
			p.Invalidate("r0")
		}
	}()
	wg.Wait()
	// The pool must still serve every bag correctly after the churn.
	for _, name := range names {
		bag, err := p.Acquire(name)
		if err != nil {
			t.Fatalf("post-churn Acquire(%s): %v", name, err)
		}
		if n, err := bag.MessageCount(); err != nil || n != 100 {
			t.Fatalf("post-churn MessageCount(%s) = %d, %v, want 100", name, n, err)
		}
	}
}

func BenchmarkColdOpen(b *testing.B) {
	back, src := benchBackend(b)
	benchDuplicate(b, back, src, "bag1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := back.Open("bag1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPoolAcquireHit(b *testing.B) {
	back, src := benchBackend(b)
	benchDuplicate(b, back, src, "bag1")
	p := New(back, Options{})
	if _, err := p.Acquire("bag1"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Acquire("bag1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPoolAcquireQueryParallel(b *testing.B) {
	back, src := benchBackend(b)
	benchDuplicate(b, back, src, "bag1")
	p := New(back, Options{})
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			bag, err := p.Acquire("bag1")
			if err != nil {
				b.Fatal(err)
			}
			err = bag.Query(core.QuerySpec{Topics: []string{"/sensor00"}}, func(core.MessageRef) error { return nil })
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchBackend(b *testing.B) (*core.BORA, string) {
	b.Helper()
	dir := b.TempDir()
	src := filepath.Join(dir, "src.bag")
	writeBagB(b, src, 16, 10)
	back, err := core.New(filepath.Join(dir, "backend"), core.Options{TimeWindow: time.Second})
	if err != nil {
		b.Fatal(err)
	}
	return back, src
}

func benchDuplicate(b *testing.B, back *core.BORA, src, name string) {
	b.Helper()
	if _, _, err := back.Duplicate(src, name); err != nil {
		b.Fatal(err)
	}
}

// writeBagB is writeBag for benchmarks (testing.B has no *testing.T).
func writeBagB(b *testing.B, path string, topics, per int) {
	b.Helper()
	w, f, err := rosbag.Create(path, rosbag.WriterOptions{ChunkThreshold: 4096})
	if err != nil {
		b.Fatal(err)
	}
	base := int64(1_000_000_000_000_000_000)
	for i := 0; i < topics; i++ {
		topic := fmt.Sprintf("/sensor%02d", i)
		for j := 0; j < per; j++ {
			ts := bagio.TimeFromNanos(base + int64(j)*1e8)
			m := &msgs.Imu{Header: msgs.Header{Seq: uint32(j), Stamp: ts, FrameID: topic}}
			if err := w.WriteMsg(topic, ts, m); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
}
