// Package pool is the shared serving layer over a core.BORA back end:
// a concurrency-safe cache of open bag handles plus a bounded block
// cache under container data reads, built for the read-mostly,
// reopen-heavy traffic of many concurrent analysis clients.
//
// The paper accepts rebuilding the tag manager's hash table on every
// open because one build is cheap (Table I); with N clients reopening
// the same bags the rebuilds dominate. The pool keeps an LRU of open
// *core.Bag handles with singleflight deduplication — N concurrent
// Acquires of the same bag pay one tag-table/index build — and
// validates each cached handle against the sealed container meta's
// generation token, so Remove, Repair and re-Duplicate make stale
// handles fall out instead of serving a deleted or rebuilt layout.
package pool

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// Defaults used when an Options field is zero.
const (
	DefaultMaxBags         = 64
	DefaultBlockCacheBytes = 64 << 20
	DefaultBlockSize       = 256 << 10
)

// Options configure a Pool.
type Options struct {
	// MaxBags bounds the number of resident open handles; zero selects
	// DefaultMaxBags. Evicted handles stay valid for clients already
	// holding them (a Bag keeps no open file descriptors between
	// queries); they simply stop being shared.
	MaxBags int
	// BlockCacheBytes bounds the block cache's payload bytes; zero
	// selects DefaultBlockCacheBytes, negative disables the block
	// cache entirely.
	BlockCacheBytes int64
	// BlockSize is the cache's fixed block width; zero selects
	// DefaultBlockSize.
	BlockSize int64
	// HotTracker, when non-nil, protects hot bags' handles from LRU
	// eviction: entries whose query rate is at least HotQPS are skipped
	// when the pool looks for a victim (unless every other entry is hot
	// too). Share the server's tracker so "hot" means the same thing in
	// Stats.HotBags and in eviction decisions.
	HotTracker *obs.RateTracker
	// HotQPS is the rate at which an entry reads as hot for eviction
	// protection; zero selects DefaultHotQPS.
	HotQPS float64
}

// DefaultHotQPS is the eviction-protection threshold when Options
// provide a HotTracker without a rate.
const DefaultHotQPS = 8.0

// Pool serves shared open handles for one BORA back end. All methods
// are safe for concurrent use.
type Pool struct {
	b       *core.BORA
	maxBags int
	blocks  *BlockLRU        // nil when the block cache is disabled
	hot     *obs.RateTracker // nil when hot-handle protection is off
	hotQPS  float64

	acquireOp     *obs.Op
	hits          *obs.Counter // pool.handle_hits
	misses        *obs.Counter // pool.handle_misses
	evictions     *obs.Counter // pool.handle_evictions
	invalidations *obs.Counter // pool.handle_invalidations
	resident      *obs.Gauge   // pool.handles_resident

	mu       sync.Mutex
	bags     map[string]*entry
	lru      *list.List // of *entry; front = most recently acquired
	hitN     int64
	missN    int64
	evictN   int64
	invalidN int64
}

// entry is one pooled bag. Its mutex is the singleflight gate: the
// holder is the one client opening (or validating) the handle, and
// every concurrent Acquire of the same name waits on it instead of
// starting its own tag-table build.
type entry struct {
	name string
	elem *list.Element

	mu  sync.Mutex
	bag *core.Bag
	gen uint64 // generation the handle was opened under (0 = live-wired)
}

// New builds a pool over b, registering its metrics on b's obs
// registry (see DESIGN.md for the metric names).
func New(b *core.BORA, opts Options) *Pool {
	if opts.MaxBags <= 0 {
		opts.MaxBags = DefaultMaxBags
	}
	if opts.HotQPS <= 0 {
		opts.HotQPS = DefaultHotQPS
	}
	reg := b.Obs()
	p := &Pool{
		b:             b,
		maxBags:       opts.MaxBags,
		hot:           opts.HotTracker,
		hotQPS:        opts.HotQPS,
		acquireOp:     reg.Op("pool.acquire"),
		hits:          reg.Counter("pool.handle_hits"),
		misses:        reg.Counter("pool.handle_misses"),
		evictions:     reg.Counter("pool.handle_evictions"),
		invalidations: reg.Counter("pool.handle_invalidations"),
		resident:      reg.Gauge("pool.handles_resident"),
		bags:          map[string]*entry{},
		lru:           list.New(),
	}
	if opts.BlockCacheBytes >= 0 {
		capacity := opts.BlockCacheBytes
		if capacity == 0 {
			capacity = DefaultBlockCacheBytes
		}
		blockSize := opts.BlockSize
		if blockSize <= 0 {
			blockSize = DefaultBlockSize
		}
		p.blocks = NewBlockLRU(capacity, blockSize, reg)
	}
	return p
}

// Backend returns the BORA instance the pool serves.
func (p *Pool) Backend() *core.BORA { return p.b }

// BlockCache returns the pool's shared block cache (nil when disabled).
func (p *Pool) BlockCache() *BlockLRU { return p.blocks }

// Acquire returns an open handle for the named bag, sharing one handle
// across all concurrent clients. A resident handle costs one small
// meta read (the staleness probe); a miss performs the cold open —
// deduplicated, so concurrent misses on the same name build once —
// and plugs the pool's block cache under the container's data reads.
func (p *Pool) Acquire(name string) (*core.Bag, error) {
	return p.AcquireSpan(name, obs.Span{})
}

// AcquireContext is Acquire with an upfront cancellation check: a
// request whose context died while it sat in admission control (or in
// a client's retry loop) skips the cold open entirely instead of
// warming the cache for a departed caller. A context that expires
// mid-open does not abort the open — the handle is cached for the
// next client and the error surfaces on the caller's next check.
func (p *Pool) AcquireContext(ctx context.Context, name string) (*core.Bag, error) {
	return p.AcquireContextSpan(ctx, name, obs.Span{})
}

// AcquireContextSpan is AcquireContext nested under parent (see
// AcquireSpan).
func (p *Pool) AcquireContextSpan(ctx context.Context, name string, parent obs.Span) (*core.Bag, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return p.AcquireSpan(name, parent)
}

// AcquireSpan is Acquire with the pool.acquire span nested under parent
// (e.g. a front-end vfs.open). A zero parent traces it as a root.
func (p *Pool) AcquireSpan(name string, parent obs.Span) (*core.Bag, error) {
	sp := parent.ChildOp(p.acquireOp)
	bag, hit, err := p.acquire(name, sp)
	if err != nil {
		sp.EndErr(err)
		return nil, err
	}
	p.mu.Lock()
	if hit {
		p.hitN++
	} else {
		p.missN++
	}
	p.mu.Unlock()
	if hit {
		p.hits.Inc()
	} else {
		p.misses.Inc()
	}
	sp.End()
	return bag, nil
}

func (p *Pool) acquire(name string, sp obs.Span) (*core.Bag, bool, error) {
	e := p.entryFor(name)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.bag != nil {
		// Staleness probe: re-read the bag meta and compare the
		// generation token minted at seal time. One ~200-byte file read
		// against the readdir + per-topic connection loads + tag-table
		// build of a cold open — and it catches out-of-band mutations
		// (Repair, Remove + re-Duplicate) that never went through this
		// pool. Live bags add one wrinkle: while a recording is in
		// progress there is no generation yet, so a handle is fresh
		// exactly when it is wired to the in-process recorder; once the
		// recording completes the wired handle's zero generation stops
		// matching the sealed meta and the next Acquire reopens the
		// finished bag.
		gen, recording, err := p.b.ProbeBag(e.name)
		fresh := false
		if err == nil {
			if recording {
				fresh = e.bag.LiveWired()
			} else {
				fresh = gen != 0 && gen == e.gen
			}
		}
		if fresh {
			return e.bag, true, nil
		}
		e.bag = nil // stale: fall through to a fresh open
		p.mu.Lock()
		p.invalidN++
		p.mu.Unlock()
		p.invalidations.Inc()
	}
	bag, err := p.b.OpenSpan(name, sp)
	if err != nil {
		p.drop(e) // do not cache failures
		return nil, false, err
	}
	if p.blocks != nil {
		// A no-op on live-wired handles: a growing data file must not
		// populate the cache with blocks cut short at today's EOF.
		bag.SetBlockCache(p.blocks)
	}
	e.bag, e.gen = bag, bag.Generation()
	return bag, false, nil
}

// entryFor returns the live entry for name, creating it (and evicting
// from the cold end past MaxBags) as needed.
func (p *Pool) entryFor(name string) *entry {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.bags[name]; ok {
		p.lru.MoveToFront(e.elem)
		return e
	}
	e := &entry{name: name}
	e.elem = p.lru.PushFront(e)
	p.bags[name] = e
	for len(p.bags) > p.maxBags {
		victim := p.lru.Back()
		if p.hot != nil {
			// Walk coldward-first past hot entries: a bag being hammered
			// right now must not lose its shared handle to one cold open of
			// something else. The front element (the entry just acquired) is
			// never a victim; if every other entry is hot the plain LRU back
			// goes anyway — protection bends the policy, it cannot wedge it.
			for el := p.lru.Back(); el != nil && el != p.lru.Front(); el = el.Prev() {
				if p.hot.Rate(el.Value.(*entry).name) < p.hotQPS {
					victim = el
					break
				}
			}
		}
		ev := victim.Value.(*entry)
		p.lru.Remove(victim)
		delete(p.bags, ev.name)
		p.evictN++
		p.evictions.Inc()
	}
	p.resident.Set(int64(len(p.bags)))
	return e
}

// drop removes e if it is still the live entry for its name (a newer
// entry may have replaced it after an eviction).
func (p *Pool) drop(e *entry) {
	p.mu.Lock()
	if cur, ok := p.bags[e.name]; ok && cur == e {
		delete(p.bags, e.name)
		p.lru.Remove(e.elem)
		p.resident.Set(int64(len(p.bags)))
	}
	p.mu.Unlock()
}

// Invalidate discards the pooled handle for name, if any. The next
// Acquire performs a cold open. Clients still holding the old handle
// keep a valid (but possibly stale) view.
func (p *Pool) Invalidate(name string) {
	p.mu.Lock()
	if e, ok := p.bags[name]; ok {
		delete(p.bags, name)
		p.lru.Remove(e.elem)
		p.invalidN++
		p.invalidations.Inc()
		p.resident.Set(int64(len(p.bags)))
	}
	p.mu.Unlock()
}

// Remove deletes the named bag from the back end and invalidates its
// pooled handle. Removals that bypass the pool are still caught by the
// staleness probe (the meta read fails), just one Acquire later.
func (p *Pool) Remove(name string) error {
	p.Invalidate(name)
	return p.b.Remove(name)
}

// Stats is a point-in-time summary of the pool's caches.
type Stats struct {
	HandleHits          int64
	HandleMisses        int64
	HandleEvictions     int64
	HandleInvalidations int64
	HandlesResident     int
	Block               BlockStats // zero when the block cache is disabled
}

// Stats returns the pool's current counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	s := Stats{
		HandleHits:          p.hitN,
		HandleMisses:        p.missN,
		HandleEvictions:     p.evictN,
		HandleInvalidations: p.invalidN,
		HandlesResident:     len(p.bags),
	}
	p.mu.Unlock()
	if p.blocks != nil {
		s.Block = p.blocks.Stats()
	}
	return s
}
