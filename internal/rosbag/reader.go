package rosbag

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/bagio"
	"repro/internal/obs"
)

// Stats counts the I/O-relevant operations performed by a Reader; the
// evaluation harness uses them to validate the cost model in
// internal/pathsim against real access paths.
type Stats struct {
	Seeks             int   // repositioning operations
	BytesRead         int64 // payload bytes read from the underlying file
	ChunkInfosScanned int   // chunk-info records traversed during open
	ChunksRead        int   // chunk records decompressed during queries
	IndexRecordsRead  int   // index-data records parsed during queries
	MessagesScanned   int   // index entries merge-sorted for queries
}

// Reader reads a bag using the stock rosbag access path: Open traverses
// the full chunk-info list; queries read per-chunk index records and
// merge-sort the matching entries before seeking to each message.
type Reader struct {
	r    io.ReaderAt
	size int64

	header     *bagio.BagHeader
	conns      map[uint32]*bagio.Connection
	connsOrder []*bagio.Connection
	chunkInfos []*bagio.ChunkInfo
	stats      Stats
	readOp     *obs.Op // rosbag.read: baseline query latency/bytes
}

// MessageRef is one message yielded by ReadMessages. Data is only valid
// for the duration of the callback.
type MessageRef struct {
	Conn *bagio.Connection
	Time bagio.Time
	Data []byte
}

// Query selects messages by topic and receive-time range. A nil or empty
// Topics slice selects all topics. Start/End are inclusive; zero values
// select the whole time axis.
type Query struct {
	Topics []string
	Start  bagio.Time
	End    bagio.Time
}

func (q *Query) normalize() (map[string]bool, bagio.Time, bagio.Time) {
	var topicSet map[string]bool
	if len(q.Topics) > 0 {
		topicSet = make(map[string]bool, len(q.Topics))
		for _, t := range q.Topics {
			topicSet[t] = true
		}
	}
	start, end := q.Start, q.End
	if end.IsZero() {
		end = bagio.MaxTime
	}
	return topicSet, start, end
}

// OpenReader performs the traditional bag open on an arbitrary source:
// read the bag header, seek to the index section, read every connection
// record and traverse the complete chunk-info list (Fig 4a of the paper).
func OpenReader(r io.ReaderAt, size int64) (*Reader, error) {
	return OpenReaderObs(r, size, nil)
}

// OpenReaderObs is OpenReader recording the baseline access path to reg
// (rosbag.open, rosbag.read ops), so baseline-vs-BORA comparisons come
// from the same instrument. A nil registry disables recording.
func OpenReaderObs(r io.ReaderAt, size int64, reg *obs.Registry) (*Reader, error) {
	sp := reg.Op("rosbag.open").Start()
	br, err := openReader(r, size)
	if err != nil {
		sp.EndErr(err)
		return nil, err
	}
	sp.EndBytes(br.stats.BytesRead)
	br.readOp = reg.Op("rosbag.read")
	return br, nil
}

func openReader(r io.ReaderAt, size int64) (*Reader, error) {
	br := &Reader{r: r, size: size, conns: map[uint32]*bagio.Connection{}}
	sc := bagio.NewRecordScanner(io.NewSectionReader(r, 0, size))
	if err := sc.ReadMagic(); err != nil {
		return nil, err
	}
	rec, err := sc.ReadRecord()
	if err != nil {
		return nil, fmt.Errorf("rosbag: read bag header: %w", err)
	}
	op, err := rec.Op()
	if err != nil {
		return nil, err
	}
	if op != bagio.OpBagHeader {
		return nil, fmt.Errorf("rosbag: first record has op %#x, want bag header", op)
	}
	br.header, err = bagio.DecodeBagHeader(rec)
	if err != nil {
		return nil, err
	}
	br.stats.BytesRead += int64(len(bagio.Magic)) + bagio.BagHeaderLen
	if br.header.IndexPos == 0 {
		return nil, fmt.Errorf("rosbag: bag was not closed (index_pos is 0); reindexing unsupported")
	}
	if br.header.IndexPos > uint64(size) {
		return nil, fmt.Errorf("rosbag: index_pos %d beyond file size %d", br.header.IndexPos, size)
	}

	// Seek to the index section and traverse it completely.
	br.stats.Seeks++
	sc = bagio.NewRecordScanner(io.NewSectionReader(r, int64(br.header.IndexPos), size-int64(br.header.IndexPos)))
	sc.SetOffset(int64(br.header.IndexPos))
	for {
		rec, err := sc.ReadRecord()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("rosbag: index section: %w", err)
		}
		op, err := rec.Op()
		if err != nil {
			return nil, err
		}
		switch op {
		case bagio.OpConnection:
			c, err := bagio.DecodeConnection(rec)
			if err != nil {
				return nil, err
			}
			if _, dup := br.conns[c.ID]; !dup {
				br.conns[c.ID] = c
				br.connsOrder = append(br.connsOrder, c)
			}
		case bagio.OpChunkInfo:
			ci, err := bagio.DecodeChunkInfo(rec)
			if err != nil {
				return nil, err
			}
			br.chunkInfos = append(br.chunkInfos, ci)
			br.stats.ChunkInfosScanned++
		default:
			return nil, fmt.Errorf("rosbag: unexpected op %#x in index section", op)
		}
	}
	if uint32(len(br.connsOrder)) != br.header.ConnCount {
		return nil, fmt.Errorf("rosbag: found %d connections, bag header says %d", len(br.connsOrder), br.header.ConnCount)
	}
	if uint32(len(br.chunkInfos)) != br.header.ChunkCount {
		return nil, fmt.Errorf("rosbag: found %d chunk infos, bag header says %d", len(br.chunkInfos), br.header.ChunkCount)
	}
	// Chronological chunk order is required by the merge phase.
	sort.Slice(br.chunkInfos, func(i, j int) bool {
		return br.chunkInfos[i].StartTime.Before(br.chunkInfos[j].StartTime)
	})
	return br, nil
}

// Open opens a bag file from the file system.
func Open(path string) (*Reader, *os.File, error) {
	return OpenObs(path, nil)
}

// OpenObs is Open recording the baseline access path to reg.
func OpenObs(path string, reg *obs.Registry) (*Reader, *os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	r, err := OpenReaderObs(f, st.Size(), reg)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f, nil
}

// Stats returns the operation counters accumulated so far.
func (br *Reader) Stats() Stats { return br.stats }

// Connections returns the bag's connections in id order.
func (br *Reader) Connections() []*bagio.Connection {
	out := make([]*bagio.Connection, len(br.connsOrder))
	copy(out, br.connsOrder)
	return out
}

// Topics returns the sorted set of topic names in the bag.
func (br *Reader) Topics() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range br.connsOrder {
		if !seen[c.Topic] {
			seen[c.Topic] = true
			out = append(out, c.Topic)
		}
	}
	sort.Strings(out)
	return out
}

// ChunkCount returns the number of chunks in the bag.
func (br *Reader) ChunkCount() int { return len(br.chunkInfos) }

// MessageCount returns the total number of messages recorded in chunk
// infos, optionally restricted to a topic set.
func (br *Reader) MessageCount(topics ...string) uint64 {
	var want map[string]bool
	if len(topics) > 0 {
		want = map[string]bool{}
		for _, t := range topics {
			want[t] = true
		}
	}
	var n uint64
	for _, ci := range br.chunkInfos {
		for conn, count := range ci.Counts {
			c := br.conns[conn]
			if c == nil {
				continue
			}
			if want == nil || want[c.Topic] {
				n += uint64(count)
			}
		}
	}
	return n
}

// TimeRange returns the earliest and latest message times in the bag.
func (br *Reader) TimeRange() (start, end bagio.Time) {
	for i, ci := range br.chunkInfos {
		if i == 0 || ci.StartTime.Before(start) {
			start = ci.StartTime
		}
		if end.Before(ci.EndTime) {
			end = ci.EndTime
		}
	}
	return start, end
}

// connIDs returns the connection ids whose topic is in the set (or all).
func (br *Reader) connIDs(topicSet map[string]bool) map[uint32]bool {
	ids := map[uint32]bool{}
	for _, c := range br.connsOrder {
		if topicSet == nil || topicSet[c.Topic] {
			ids[c.ID] = true
		}
	}
	return ids
}

type indexedMessage struct {
	conn   uint32
	time   bagio.Time
	offset uint32 // within the uncompressed chunk
	chunk  int    // index into chunkInfos
}

// buildEntryList reproduces the baseline's index-entry construction: for
// every chunk overlapping the query window, read that chunk's index-data
// records, filter by connection and time, then merge-sort everything by
// timestamp (the O(N log N) step the paper describes).
func (br *Reader) buildEntryList(connSet map[uint32]bool, start, end bagio.Time) ([]indexedMessage, error) {
	var entries []indexedMessage
	for chunkIdx, ci := range br.chunkInfos {
		if ci.EndTime.Before(start) || end.Before(ci.StartTime) {
			continue
		}
		// The index-data records follow the chunk record on disk: skip
		// over the chunk payload, then read index records.
		br.stats.Seeks++
		sc := bagio.NewRecordScanner(io.NewSectionReader(br.r, int64(ci.ChunkPos), br.size-int64(ci.ChunkPos)))
		sc.SetOffset(int64(ci.ChunkPos))
		op, skipped, err := sc.SkipRecord()
		if err != nil {
			return nil, fmt.Errorf("rosbag: skip chunk at %d: %w", ci.ChunkPos, err)
		}
		if op != bagio.OpChunk {
			return nil, fmt.Errorf("rosbag: record at %d has op %#x, want chunk", ci.ChunkPos, op)
		}
		_ = skipped
		for range ci.Counts {
			rec, err := sc.ReadRecord()
			if err != nil {
				return nil, fmt.Errorf("rosbag: index record after chunk at %d: %w", ci.ChunkPos, err)
			}
			ixOp, err := rec.Op()
			if err != nil {
				return nil, err
			}
			if ixOp != bagio.OpIndexData {
				return nil, fmt.Errorf("rosbag: expected index data after chunk, got op %#x", ixOp)
			}
			ix, err := bagio.DecodeIndexData(rec)
			if err != nil {
				return nil, err
			}
			br.stats.IndexRecordsRead++
			br.stats.BytesRead += int64(len(rec.Data))
			br.stats.MessagesScanned += len(ix.Entries)
			if !connSet[ix.Conn] {
				continue
			}
			for _, e := range ix.Entries {
				if e.Time.Before(start) || end.Before(e.Time) {
					continue
				}
				entries = append(entries, indexedMessage{conn: ix.Conn, time: e.Time, offset: e.Offset, chunk: chunkIdx})
			}
		}
	}
	// Merge-sort by timestamp (stable by chunk/offset for determinism).
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if !a.time.Equal(b.time) {
			return a.time.Before(b.time)
		}
		if a.chunk != b.chunk {
			return a.chunk < b.chunk
		}
		return a.offset < b.offset
	})
	return entries, nil
}

// readChunkData loads and decompresses the chunk payload at ci.
func (br *Reader) readChunkData(ci *bagio.ChunkInfo) ([]byte, error) {
	br.stats.Seeks++
	sc := bagio.NewRecordScanner(io.NewSectionReader(br.r, int64(ci.ChunkPos), br.size-int64(ci.ChunkPos)))
	sc.SetOffset(int64(ci.ChunkPos))
	rec, err := sc.ReadRecord()
	if err != nil {
		return nil, fmt.Errorf("rosbag: read chunk at %d: %w", ci.ChunkPos, err)
	}
	if op, _ := rec.Op(); op != bagio.OpChunk {
		return nil, fmt.Errorf("rosbag: record at %d is not a chunk", ci.ChunkPos)
	}
	br.stats.ChunksRead++
	br.stats.BytesRead += int64(len(rec.Data))
	return bagio.DecodeChunk(rec)
}

// ReadMessages yields matching messages in timestamp order. This is the
// baseline two-dimensional (topics, time-range) query path.
func (br *Reader) ReadMessages(q Query, fn func(MessageRef) error) (err error) {
	sp := br.readOp.Start()
	bytesBefore := br.stats.BytesRead
	defer func() {
		if err != nil {
			sp.EndErr(err)
		} else {
			sp.EndBytes(br.stats.BytesRead - bytesBefore)
		}
	}()
	topicSet, start, end := q.normalize()
	connSet := br.connIDs(topicSet)
	entries, err := br.buildEntryList(connSet, start, end)
	if err != nil {
		return err
	}
	// Read chunks lazily, caching the most recent one: entries sorted by
	// time frequently alternate between neighbouring chunks, matching the
	// baseline's seek-heavy behaviour.
	cachedChunk := -1
	var chunkData []byte
	for _, e := range entries {
		if e.chunk != cachedChunk {
			chunkData, err = br.readChunkData(br.chunkInfos[e.chunk])
			if err != nil {
				return err
			}
			cachedChunk = e.chunk
		}
		if int(e.offset) >= len(chunkData) {
			return fmt.Errorf("rosbag: index offset %d beyond chunk of %d bytes", e.offset, len(chunkData))
		}
		sc := bagio.NewRecordScanner(bytes.NewReader(chunkData[e.offset:]))
		rec, err := sc.ReadRecord()
		if err != nil {
			return fmt.Errorf("rosbag: message record at chunk offset %d: %w", e.offset, err)
		}
		md, err := bagio.DecodeMessageData(rec)
		if err != nil {
			return err
		}
		c := br.conns[md.Conn]
		if c == nil {
			return fmt.Errorf("rosbag: message on unknown connection %d", md.Conn)
		}
		if err := fn(MessageRef{Conn: c, Time: md.Time, Data: md.Data}); err != nil {
			return err
		}
	}
	return nil
}
