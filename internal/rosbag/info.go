package rosbag

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bagio"
)

// TopicInfo summarizes one topic for `borabag info`.
type TopicInfo struct {
	Topic    string
	Type     string
	Messages uint64
}

// Info is a human-oriented bag summary, mirroring `rosbag info`.
type Info struct {
	Size      int64
	Chunks    int
	Messages  uint64
	StartTime bagio.Time
	EndTime   bagio.Time
	Topics    []TopicInfo
}

// Info summarizes the opened bag.
func (br *Reader) Info() Info {
	info := Info{Size: br.size, Chunks: len(br.chunkInfos)}
	info.StartTime, info.EndTime = br.TimeRange()
	perTopic := map[string]*TopicInfo{}
	for _, c := range br.connsOrder {
		if _, ok := perTopic[c.Topic]; !ok {
			perTopic[c.Topic] = &TopicInfo{Topic: c.Topic, Type: c.Type}
		}
	}
	for _, ci := range br.chunkInfos {
		for conn, count := range ci.Counts {
			c := br.conns[conn]
			if c == nil {
				continue
			}
			ti := perTopic[c.Topic]
			ti.Messages += uint64(count)
			info.Messages += uint64(count)
		}
	}
	for _, ti := range perTopic {
		info.Topics = append(info.Topics, *ti)
	}
	sort.Slice(info.Topics, func(i, j int) bool { return info.Topics[i].Topic < info.Topics[j].Topic })
	return info
}

// String renders the summary in a rosbag-info-like layout.
func (info Info) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "size:     %d bytes\n", info.Size)
	fmt.Fprintf(&sb, "chunks:   %d\n", info.Chunks)
	fmt.Fprintf(&sb, "messages: %d\n", info.Messages)
	fmt.Fprintf(&sb, "start:    %s\n", info.StartTime)
	fmt.Fprintf(&sb, "end:      %s\n", info.EndTime)
	fmt.Fprintf(&sb, "topics:\n")
	for _, t := range info.Topics {
		fmt.Fprintf(&sb, "  %-32s %8d msgs  %s\n", t.Topic, t.Messages, t.Type)
	}
	return sb.String()
}
