package rosbag

import (
	"io"

	"repro/internal/bagio"
)

// Filter extracts the subset of a bag matching the query into a new bag
// on ws — the stock rebagging workflow ("APIs like rebagging [are]
// available for developers to iterate over a bag and extract messages
// that match a particular filter into a new bag file"). Unlike BORA's
// container-to-container Rebag, this path pays the full baseline costs:
// an indexed open of the source plus a chunk-seeking read of every
// matching message, then a complete re-write.
//
// keep may be nil to keep every message matched by q.
func Filter(src io.ReaderAt, size int64, ws io.WriteSeeker, q Query, keep func(MessageRef) bool, opts WriterOptions) (uint64, error) {
	r, err := OpenReader(src, size)
	if err != nil {
		return 0, err
	}
	w, err := NewWriter(ws, opts)
	if err != nil {
		return 0, err
	}
	conns := map[string]uint32{}
	var kept uint64
	err = r.ReadMessages(q, func(m MessageRef) error {
		if keep != nil && !keep(m) {
			return nil
		}
		id, ok := conns[m.Conn.Topic]
		if !ok {
			var err error
			id, err = w.AddConnection(m.Conn.Topic, m.Conn.Type)
			if err != nil {
				return err
			}
			conns[m.Conn.Topic] = id
		}
		if err := w.WriteMessage(id, m.Time, m.Data); err != nil {
			return err
		}
		kept++
		return nil
	})
	if err != nil {
		return kept, err
	}
	return kept, w.Close()
}

// FilterTimeRange is a convenience wrapper selecting [start, end] on the
// given topics.
func FilterTimeRange(src io.ReaderAt, size int64, ws io.WriteSeeker, topics []string, start, end bagio.Time, opts WriterOptions) (uint64, error) {
	return Filter(src, size, ws, Query{Topics: topics, Start: start, End: end}, nil, opts)
}
