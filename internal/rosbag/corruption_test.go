package rosbag

import (
	"math/rand"
	"testing"
)

// TestRandomCorruptionNeverPanics flips random bytes in a valid bag and
// confirms every entry point fails cleanly (error or reduced data, never
// a panic or a hang).
func TestRandomCorruptionNeverPanics(t *testing.T) {
	pristine := writeTestBag(t, WriterOptions{ChunkThreshold: 1024}, 60)
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 200; trial++ {
		buf := append([]byte(nil), pristine.buf...)
		// Flip 1-4 bytes anywhere in the file.
		for k := 0; k < 1+rng.Intn(4); k++ {
			buf[rng.Intn(len(buf))] ^= byte(1 + rng.Intn(255))
		}
		mf := &memFile{buf: buf}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic on corrupted bag: %v", trial, r)
				}
			}()
			r, err := OpenReader(mf, int64(len(buf)))
			if err != nil {
				return // clean rejection
			}
			// Open may succeed when the flip hit payload bytes; queries
			// must still not panic.
			_ = r.ReadMessages(Query{}, func(MessageRef) error { return nil })
			_ = r.Info()
		}()
	}
}

// TestRandomCorruptionSalvage confirms Reindex never panics either and
// recovers a (possibly empty) prefix.
func TestRandomCorruptionSalvage(t *testing.T) {
	pristine := writeTestBag(t, WriterOptions{ChunkThreshold: 1024}, 60)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		buf := append([]byte(nil), pristine.buf...)
		buf[rng.Intn(len(buf))] ^= byte(1 + rng.Intn(255))
		mf := &memFile{buf: buf}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic during salvage: %v", trial, r)
				}
			}()
			out := &memFile{}
			stats, err := Reindex(mf, int64(len(buf)), out, WriterOptions{})
			if err != nil {
				return
			}
			// Whatever was salvaged must be a valid bag.
			if _, err := OpenReader(out, int64(len(out.buf))); err != nil {
				t.Fatalf("trial %d: salvage output unreadable (%d msgs): %v", trial, stats.Messages, err)
			}
		}()
	}
}
