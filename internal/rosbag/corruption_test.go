package rosbag

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bagio"
)

// recMsg is one recovered message flattened for prefix comparison.
type recMsg struct {
	Topic string
	Time  bagio.Time
	Data  []byte
}

func collectMessages(t *testing.T, mf *memFile) []recMsg {
	t.Helper()
	r, err := OpenReader(mf, int64(len(mf.buf)))
	if err != nil {
		t.Fatal(err)
	}
	var out []recMsg
	err = r.ReadMessages(Query{}, func(m MessageRef) error {
		out = append(out, recMsg{Topic: m.Conn.Topic, Time: m.Time, Data: append([]byte(nil), m.Data...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// chunkSpan locates the n-th op=0x05 chunk record (0-based) in a bag
// stream, returning the byte range of the whole record.
func chunkSpan(t *testing.T, buf []byte, n int) (start, end int64) {
	t.Helper()
	sc := bagio.NewRecordScanner(bytes.NewReader(buf))
	if err := sc.ReadMagic(); err != nil {
		t.Fatal(err)
	}
	seen := 0
	for {
		start = sc.Offset()
		op, size, err := sc.SkipRecord()
		if err != nil {
			t.Fatalf("bag has only %d chunks, want at least %d", seen, n+1)
		}
		if op == bagio.OpChunk {
			if seen == n {
				return start, start + size
			}
			seen++
		}
	}
}

// assertRecoveredPrefix reindexes a damaged bag and asserts the salvage
// is a non-empty strict prefix of the original message sequence,
// byte-for-byte.
func assertRecoveredPrefix(t *testing.T, damaged *memFile, want []recMsg) {
	t.Helper()
	out := &memFile{}
	stats, err := Reindex(damaged, int64(len(damaged.buf)), out, WriterOptions{})
	if err != nil {
		t.Fatalf("reindex of damaged bag failed outright: %v", err)
	}
	if !stats.Truncated {
		t.Fatal("reindex did not notice the damage")
	}
	got := collectMessages(t, out)
	if len(got) == 0 || len(got) >= len(want) {
		t.Fatalf("recovered %d of %d messages, want a non-empty strict prefix", len(got), len(want))
	}
	if uint64(len(got)) != stats.Messages {
		t.Fatalf("stats say %d messages, output has %d", stats.Messages, len(got))
	}
	for i := range got {
		if got[i].Topic != want[i].Topic || got[i].Time != want[i].Time || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("recovered message %d differs from original (topic %s vs %s)", i, got[i].Topic, want[i].Topic)
		}
	}
}

// TestReindexTruncatedChunk cuts the bag mid-chunk — the torn tail of an
// interrupted recording — and confirms Reindex recovers exactly the
// messages of the preceding whole chunks.
func TestReindexTruncatedChunk(t *testing.T) {
	pristine := writeTestBag(t, WriterOptions{ChunkThreshold: 1024}, 60)
	want := collectMessages(t, pristine)
	start, end := chunkSpan(t, pristine.buf, 2)
	for _, cut := range []int64{start + 4, (start + end) / 2, end - 1} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			damaged := &memFile{buf: append([]byte(nil), pristine.buf[:cut]...)}
			assertRecoveredPrefix(t, damaged, want)
		})
	}
}

// TestReindexBadChunkCRC corrupts the tail of a compressed chunk — where
// the gzip size/CRC trailer lives — and confirms the decompression
// failure truncates the salvage instead of surfacing mangled payloads.
func TestReindexBadChunkCRC(t *testing.T) {
	pristine := writeTestBag(t, WriterOptions{ChunkThreshold: 1024, Compression: bagio.CompressionGZ}, 60)
	want := collectMessages(t, pristine)
	_, end := chunkSpan(t, pristine.buf, 2)
	damaged := &memFile{buf: append([]byte(nil), pristine.buf...)}
	damaged.buf[end-1] ^= 0xff // last byte of the gzip stream: CRC32/ISIZE trailer
	assertRecoveredPrefix(t, damaged, want)
}

// TestRandomCorruptionNeverPanics flips random bytes in a valid bag and
// confirms every entry point fails cleanly (error or reduced data, never
// a panic or a hang).
func TestRandomCorruptionNeverPanics(t *testing.T) {
	pristine := writeTestBag(t, WriterOptions{ChunkThreshold: 1024}, 60)
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 200; trial++ {
		buf := append([]byte(nil), pristine.buf...)
		// Flip 1-4 bytes anywhere in the file.
		for k := 0; k < 1+rng.Intn(4); k++ {
			buf[rng.Intn(len(buf))] ^= byte(1 + rng.Intn(255))
		}
		mf := &memFile{buf: buf}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic on corrupted bag: %v", trial, r)
				}
			}()
			r, err := OpenReader(mf, int64(len(buf)))
			if err != nil {
				return // clean rejection
			}
			// Open may succeed when the flip hit payload bytes; queries
			// must still not panic.
			_ = r.ReadMessages(Query{}, func(MessageRef) error { return nil })
			_ = r.Info()
		}()
	}
}

// TestRandomCorruptionSalvage confirms Reindex never panics either and
// recovers a (possibly empty) prefix.
func TestRandomCorruptionSalvage(t *testing.T) {
	pristine := writeTestBag(t, WriterOptions{ChunkThreshold: 1024}, 60)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		buf := append([]byte(nil), pristine.buf...)
		buf[rng.Intn(len(buf))] ^= byte(1 + rng.Intn(255))
		mf := &memFile{buf: buf}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic during salvage: %v", trial, r)
				}
			}()
			out := &memFile{}
			stats, err := Reindex(mf, int64(len(buf)), out, WriterOptions{})
			if err != nil {
				return
			}
			// Whatever was salvaged must be a valid bag.
			if _, err := OpenReader(out, int64(len(out.buf))); err != nil {
				t.Fatalf("trial %d: salvage output unreadable (%d msgs): %v", trial, stats.Messages, err)
			}
		}()
	}
}
