package rosbag

import (
	"testing"

	"repro/internal/bagio"
	"repro/internal/msgs"
)

// writeUnclosedBag records messages but never calls Close, leaving the
// bag without an index section (index_pos = 0).
func writeUnclosedBag(t *testing.T, count int) *memFile {
	t.Helper()
	mf := &memFile{}
	w, err := NewWriter(mf, WriterOptions{ChunkThreshold: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < count; i++ {
		ts := bagio.Time{Sec: uint32(10 + i)}
		m := &msgs.Imu{Header: msgs.Header{Seq: uint32(i), Stamp: ts}}
		if err := w.WriteMsg("/imu", ts, m); err != nil {
			t.Fatal(err)
		}
	}
	// Flush complete chunks without writing the index section: calling
	// an internal flush via a message burst is enough since the 1 KiB
	// threshold seals chunks as we go; the in-flight partial chunk is
	// simply lost, as with a real crash.
	return mf
}

func TestReindexUnclosedBag(t *testing.T) {
	mf := writeUnclosedBag(t, 60)
	// The stock open must refuse it...
	if _, err := OpenReader(mf, int64(len(mf.buf))); err == nil {
		t.Fatal("unclosed bag opened without reindex")
	}
	// ...but Reindex recovers the sealed chunks.
	out := &memFile{}
	stats, err := Reindex(mf, int64(len(mf.buf)), out, WriterOptions{})
	if err != nil {
		t.Fatalf("Reindex: %v", err)
	}
	if stats.Messages == 0 || stats.Chunks == 0 || stats.Connections != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// Messages still in the unsealed final chunk are legitimately lost;
	// everything else must be present and readable.
	r, err := OpenReader(out, int64(len(out.buf)))
	if err != nil {
		t.Fatalf("open reindexed bag: %v", err)
	}
	if got := r.MessageCount(); got != stats.Messages {
		t.Errorf("reindexed bag has %d messages, stats say %d", got, stats.Messages)
	}
	if stats.Messages < 50 { // 60 minus at most one chunk's worth
		t.Errorf("recovered only %d of 60 messages", stats.Messages)
	}
	var count int
	if err := r.ReadMessages(Query{}, func(m MessageRef) error {
		var imu msgs.Imu
		if err := imu.Unmarshal(m.Data); err != nil {
			return err
		}
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if uint64(count) != stats.Messages {
		t.Errorf("read %d, want %d", count, stats.Messages)
	}
}

func TestReindexTruncatedTail(t *testing.T) {
	mf := writeTestBag(t, WriterOptions{ChunkThreshold: 1024}, 90)
	// Chop the file mid-way: the index section and later chunks vanish.
	cut := mf.buf[:len(mf.buf)*2/3]
	src := &memFile{buf: cut}
	out := &memFile{}
	stats, err := Reindex(src, int64(len(cut)), out, WriterOptions{})
	if err != nil {
		t.Fatalf("Reindex: %v", err)
	}
	if !stats.Truncated {
		t.Error("truncation not reported")
	}
	if stats.Messages == 0 {
		t.Fatal("nothing recovered from truncated bag")
	}
	r, err := OpenReader(out, int64(len(out.buf)))
	if err != nil {
		t.Fatalf("open salvaged bag: %v", err)
	}
	if got := r.MessageCount(); got != stats.Messages {
		t.Errorf("salvaged bag has %d messages, stats say %d", got, stats.Messages)
	}
}

func TestReindexIntactBag(t *testing.T) {
	mf := writeTestBag(t, WriterOptions{ChunkThreshold: 2048}, 45)
	out := &memFile{}
	stats, err := Reindex(mf, int64(len(mf.buf)), out, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncated {
		t.Error("intact bag reported truncated")
	}
	if stats.Messages != 45 {
		t.Errorf("Messages = %d, want 45", stats.Messages)
	}
	if stats.Connections != 3 {
		t.Errorf("Connections = %d", stats.Connections)
	}
	r, err := OpenReader(out, int64(len(out.buf)))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.MessageCount(); got != 45 {
		t.Errorf("reindexed MessageCount = %d", got)
	}
}

func TestReindexRejectsGarbage(t *testing.T) {
	if _, err := Reindex(&memFile{buf: []byte("garbage")}, 7, &memFile{}, WriterOptions{}); err == nil {
		t.Error("garbage accepted")
	}
	// Valid magic, missing bag header.
	mf := &memFile{buf: []byte(bagio.Magic)}
	if _, err := Reindex(mf, int64(len(mf.buf)), &memFile{}, WriterOptions{}); err == nil {
		t.Error("header-less file accepted")
	}
}

func TestFilterByTopic(t *testing.T) {
	mf := writeTestBag(t, WriterOptions{ChunkThreshold: 1024}, 90)
	out := &memFile{}
	kept, err := Filter(mf, int64(len(mf.buf)), out, Query{Topics: []string{"/imu"}}, nil, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if kept != 30 {
		t.Errorf("kept = %d, want 30", kept)
	}
	r, err := OpenReader(out, int64(len(out.buf)))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Topics(); len(got) != 1 || got[0] != "/imu" {
		t.Errorf("Topics = %v", got)
	}
	if got := r.MessageCount(); got != 30 {
		t.Errorf("MessageCount = %d", got)
	}
}

func TestFilterTimeRangeAndPredicate(t *testing.T) {
	mf := writeTestBag(t, WriterOptions{ChunkThreshold: 1024}, 90)
	out := &memFile{}
	start := bagio.Time{Sec: 1010}
	end := bagio.Time{Sec: 1039, NSec: 999999999}
	kept, err := Filter(mf, int64(len(mf.buf)), out,
		Query{Topics: []string{"/imu", "/tf"}, Start: start, End: end},
		func(m MessageRef) bool { return m.Conn.Topic == "/imu" }, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if kept != 10 { // imu at i%3==0 in [1010,1039]: i ∈ {1012..1039 step}, 10 samples
		t.Errorf("kept = %d", kept)
	}
	r, err := OpenReader(out, int64(len(out.buf)))
	if err != nil {
		t.Fatal(err)
	}
	err = r.ReadMessages(Query{}, func(m MessageRef) error {
		if m.Conn.Topic != "/imu" {
			t.Errorf("predicate leaked topic %s", m.Conn.Topic)
		}
		if m.Time.Before(start) || end.Before(m.Time) {
			t.Errorf("message at %v outside range", m.Time)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Convenience wrapper agrees.
	out2 := &memFile{}
	kept2, err := FilterTimeRange(mf, int64(len(mf.buf)), out2, []string{"/imu"}, start, end, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if kept2 != 10 {
		t.Errorf("FilterTimeRange kept %d", kept2)
	}
}

func TestFilterGarbageSource(t *testing.T) {
	bad := &memFile{buf: []byte("nope")}
	if _, err := Filter(bad, 4, &memFile{}, Query{}, nil, WriterOptions{}); err == nil {
		t.Error("garbage source accepted")
	}
}
