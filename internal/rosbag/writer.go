// Package rosbag implements a rosbag-equivalent recorder and reader over
// the bag v2.0 format of internal/bagio. The Reader deliberately
// reproduces the stock rosbag access path that the BORA paper uses as its
// control group: open traverses the chunk-info list (O(N) in the number
// of chunks), and time-range queries merge-sort per-connection index
// entries before seeking into chunks (O(N log N) in the number of
// messages). Instrumentation counters expose the op counts those costs
// come from.
package rosbag

import (
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/bagio"
	"repro/internal/msgdef"
	"repro/internal/msgs"
)

// DefaultChunkThreshold is the uncompressed chunk size at which the
// writer seals a chunk, matching the rosbag default of 768 KiB.
const DefaultChunkThreshold = 768 * 1024

// WriterOptions configure bag recording.
type WriterOptions struct {
	// ChunkThreshold is the uncompressed byte size at which a chunk is
	// sealed. Zero selects DefaultChunkThreshold.
	ChunkThreshold int
	// Compression is the chunk compression scheme (bagio.CompressionNone
	// or bagio.CompressionGZ). Empty selects none.
	Compression string
}

func (o *WriterOptions) fill() {
	if o.ChunkThreshold <= 0 {
		o.ChunkThreshold = DefaultChunkThreshold
	}
	if o.Compression == "" {
		o.Compression = bagio.CompressionNone
	}
}

// Writer records messages into a bag file.
type Writer struct {
	ws   io.WriteSeeker
	rw   *bagio.RecordWriter
	opts WriterOptions

	conns      []*bagio.Connection
	connByKey  map[string]uint32 // topic + "\x00" + type -> conn id
	chunkBuf   []byte
	chunkIndex map[uint32][]bagio.IndexEntry
	chunkStart bagio.Time
	chunkEnd   bagio.Time
	chunkInfos []*bagio.ChunkInfo
	msgCount   uint64
	closed     bool
}

// NewWriter starts a bag on ws. The stream must start empty; the bag
// header is patched in place during Close, which is why a seeker is
// required.
func NewWriter(ws io.WriteSeeker, opts WriterOptions) (*Writer, error) {
	opts.fill()
	w := &Writer{
		ws:         ws,
		rw:         bagio.NewRecordWriter(ws),
		opts:       opts,
		connByKey:  map[string]uint32{},
		chunkIndex: map[uint32][]bagio.IndexEntry{},
	}
	if err := w.rw.WriteMagic(); err != nil {
		return nil, fmt.Errorf("rosbag: write magic: %w", err)
	}
	// Placeholder bag header; patched on Close.
	hdr, err := (&bagio.BagHeader{}).Encode()
	if err != nil {
		return nil, err
	}
	if err := w.rw.WriteRaw(hdr); err != nil {
		return nil, fmt.Errorf("rosbag: write bag header: %w", err)
	}
	return w, nil
}

// Create opens path for writing and starts a bag on it. Close closes the
// file.
func Create(path string, opts WriterOptions) (*Writer, *os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w, err := NewWriter(f, opts)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return w, f, nil
}

// AddConnection registers a topic/type pair and returns its connection
// id. Registering the same pair twice returns the existing id. The
// message definition and MD5 are filled from msgdef when known.
func (w *Writer) AddConnection(topic, msgType string) (uint32, error) {
	if w.closed {
		return 0, fmt.Errorf("rosbag: writer is closed")
	}
	key := topic + "\x00" + msgType
	if id, ok := w.connByKey[key]; ok {
		return id, nil
	}
	c := &bagio.Connection{
		ID:    uint32(len(w.conns)),
		Topic: topic,
		Type:  msgType,
	}
	if sum, err := msgdef.MD5(msgType); err == nil {
		c.MD5Sum = sum
	}
	if def, err := msgdef.FullText(msgType); err == nil {
		c.Def = def
	}
	w.conns = append(w.conns, c)
	w.connByKey[key] = c.ID
	// Connection records live both inside chunks (so chunks are
	// self-describing) and in the index section (written on Close).
	w.appendToChunk((c.Encode()))
	return c.ID, nil
}

// appendToChunk encodes rec into the current chunk buffer and returns the
// record's offset within the uncompressed chunk data.
func (w *Writer) appendToChunk(rec *bagio.Record) uint32 {
	off := uint32(len(w.chunkBuf))
	hb := rec.Header.Encode()
	w.chunkBuf = appendU32(w.chunkBuf, uint32(len(hb)))
	w.chunkBuf = append(w.chunkBuf, hb...)
	w.chunkBuf = appendU32(w.chunkBuf, uint32(len(rec.Data)))
	w.chunkBuf = append(w.chunkBuf, rec.Data...)
	return off
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// WriteMessage appends one serialized message on an existing connection.
func (w *Writer) WriteMessage(conn uint32, t bagio.Time, data []byte) error {
	if w.closed {
		return fmt.Errorf("rosbag: writer is closed")
	}
	if int(conn) >= len(w.conns) {
		return fmt.Errorf("rosbag: unknown connection %d", conn)
	}
	md := &bagio.MessageData{Conn: conn, Time: t, Data: data}
	off := w.appendToChunk(md.Encode())
	w.chunkIndex[conn] = append(w.chunkIndex[conn], bagio.IndexEntry{Time: t, Offset: off})
	if w.msgCountInChunk() == 1 || t.Before(w.chunkStart) {
		w.chunkStart = t
	}
	if w.chunkEnd.Before(t) {
		w.chunkEnd = t
	}
	w.msgCount++
	if len(w.chunkBuf) >= w.opts.ChunkThreshold {
		return w.flushChunk()
	}
	return nil
}

func (w *Writer) msgCountInChunk() int {
	n := 0
	for _, es := range w.chunkIndex {
		n += len(es)
	}
	return n
}

// WriteMsg marshals m and appends it on the topic, creating the
// connection as needed.
func (w *Writer) WriteMsg(topic string, t bagio.Time, m msgs.Message) error {
	conn, err := w.AddConnection(topic, m.TypeName())
	if err != nil {
		return err
	}
	return w.WriteMessage(conn, t, m.Marshal(nil))
}

// flushChunk seals the current chunk: writes the chunk record followed by
// one index-data record per connection, and remembers the chunk info.
func (w *Writer) flushChunk() error {
	if len(w.chunkBuf) == 0 {
		return nil
	}
	chunkPos := uint64(w.rw.Offset())
	rec, err := bagio.EncodeChunk(w.chunkBuf, w.opts.Compression)
	if err != nil {
		return err
	}
	if err := w.rw.WriteRecord(rec); err != nil {
		return fmt.Errorf("rosbag: write chunk: %w", err)
	}
	ci := &bagio.ChunkInfo{
		ChunkPos:  chunkPos,
		StartTime: w.chunkStart,
		EndTime:   w.chunkEnd,
		Counts:    map[uint32]uint32{},
	}
	conns := make([]uint32, 0, len(w.chunkIndex))
	for c := range w.chunkIndex {
		conns = append(conns, c)
	}
	sort.Slice(conns, func(i, j int) bool { return conns[i] < conns[j] })
	for _, c := range conns {
		entries := w.chunkIndex[c]
		ci.Counts[c] = uint32(len(entries))
		ix := &bagio.IndexData{Conn: c, Entries: entries}
		if err := w.rw.WriteRecord(ix.Encode()); err != nil {
			return fmt.Errorf("rosbag: write index data: %w", err)
		}
	}
	w.chunkInfos = append(w.chunkInfos, ci)
	w.chunkBuf = w.chunkBuf[:0]
	w.chunkIndex = map[uint32][]bagio.IndexEntry{}
	w.chunkStart, w.chunkEnd = bagio.Time{}, bagio.Time{}
	return nil
}

// MessageCount returns the number of messages written so far.
func (w *Writer) MessageCount() uint64 { return w.msgCount }

// Seal commits the bag (Close under core.RecordSink's name), making
// *Writer a drop-in recording destination alongside core.Recorder.
// The underlying file, which the Writer does not own, is still the
// caller's to close.
func (w *Writer) Seal() error { return w.Close() }

// Close seals the last chunk, writes the index section (connection
// records then chunk-info records) and patches the bag header.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.flushChunk(); err != nil {
		return err
	}
	indexPos := uint64(w.rw.Offset())
	for _, c := range w.conns {
		if err := w.rw.WriteRecord(c.Encode()); err != nil {
			return fmt.Errorf("rosbag: write connection record: %w", err)
		}
	}
	for _, ci := range w.chunkInfos {
		if err := w.rw.WriteRecord(ci.Encode()); err != nil {
			return fmt.Errorf("rosbag: write chunk info: %w", err)
		}
	}
	// Patch the bag header in place.
	bh := &bagio.BagHeader{
		IndexPos:   indexPos,
		ConnCount:  uint32(len(w.conns)),
		ChunkCount: uint32(len(w.chunkInfos)),
	}
	enc, err := bh.Encode()
	if err != nil {
		return err
	}
	if _, err := w.ws.Seek(int64(len(bagio.Magic)), io.SeekStart); err != nil {
		return fmt.Errorf("rosbag: seek to bag header: %w", err)
	}
	if _, err := w.ws.Write(enc); err != nil {
		return fmt.Errorf("rosbag: patch bag header: %w", err)
	}
	if _, err := w.ws.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("rosbag: seek to end: %w", err)
	}
	return nil
}
