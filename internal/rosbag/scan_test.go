package rosbag

import (
	"errors"
	"testing"

	"repro/internal/bagio"
)

func TestScanVisitsAllMessagesInFileOrder(t *testing.T) {
	mf := writeTestBag(t, WriterOptions{ChunkThreshold: 1024}, 90)
	var count int
	var last bagio.Time
	err := Scan(mf, int64(len(mf.buf)), func(conn *bagio.Connection, ts bagio.Time, data []byte) error {
		if conn == nil || conn.Topic == "" {
			t.Fatal("missing connection metadata")
		}
		if ts.Before(last) {
			t.Errorf("scan out of order: %v after %v", ts, last)
		}
		last = ts
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 90 {
		t.Errorf("scanned %d messages, want 90", count)
	}
}

func TestScanStopsAtIndexSection(t *testing.T) {
	mf := writeTestBag(t, WriterOptions{ChunkThreshold: 1024}, 30)
	// A full scan must not complain about the tail connection and
	// chunk-info records.
	if err := Scan(mf, int64(len(mf.buf)), func(*bagio.Connection, bagio.Time, []byte) error {
		return nil
	}); err != nil {
		t.Fatalf("Scan choked on index section: %v", err)
	}
}

func TestScanCallbackErrorPropagates(t *testing.T) {
	mf := writeTestBag(t, WriterOptions{ChunkThreshold: 1024}, 30)
	boom := errors.New("boom")
	seen := 0
	err := Scan(mf, int64(len(mf.buf)), func(*bagio.Connection, bagio.Time, []byte) error {
		seen++
		if seen == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	if seen != 5 {
		t.Errorf("callback ran %d times after error", seen)
	}
}

func TestScanGZCompressedBag(t *testing.T) {
	mf := writeTestBag(t, WriterOptions{ChunkThreshold: 2048, Compression: bagio.CompressionGZ}, 45)
	count := 0
	if err := Scan(mf, int64(len(mf.buf)), func(*bagio.Connection, bagio.Time, []byte) error {
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 45 {
		t.Errorf("scanned %d, want 45", count)
	}
}

func TestScanRejectsGarbage(t *testing.T) {
	bad := &memFile{buf: []byte("definitely not a bag")}
	if err := Scan(bad, int64(len(bad.buf)), func(*bagio.Connection, bagio.Time, []byte) error {
		return nil
	}); err == nil {
		t.Error("garbage accepted")
	}
}
