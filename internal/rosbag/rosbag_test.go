package rosbag

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/bagio"
	"repro/internal/msgs"
)

// memFile is an in-memory io.WriteSeeker + io.ReaderAt for tests.
type memFile struct {
	buf []byte
	pos int64
}

func (m *memFile) Write(p []byte) (int, error) {
	if need := m.pos + int64(len(p)); need > int64(len(m.buf)) {
		grown := make([]byte, need)
		copy(grown, m.buf)
		m.buf = grown
	}
	copy(m.buf[m.pos:], p)
	m.pos += int64(len(p))
	return len(p), nil
}

func (m *memFile) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case 0:
		m.pos = off
	case 1:
		m.pos += off
	case 2:
		m.pos = int64(len(m.buf)) + off
	}
	if m.pos < 0 {
		return 0, fmt.Errorf("negative seek")
	}
	return m.pos, nil
}

func (m *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.buf)) {
		return 0, fmt.Errorf("read past end")
	}
	n := copy(p, m.buf[off:])
	if n < len(p) {
		return n, fmt.Errorf("short read")
	}
	return n, nil
}

// writeTestBag records count messages alternating across three topics.
func writeTestBag(t *testing.T, opts WriterOptions, count int) *memFile {
	t.Helper()
	mf := &memFile{}
	w, err := NewWriter(mf, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < count; i++ {
		ts := bagio.Time{Sec: uint32(1000 + i), NSec: uint32(i)}
		switch i % 3 {
		case 0:
			m := &msgs.Imu{Header: msgs.Header{Seq: uint32(i), Stamp: ts, FrameID: "/imu"}}
			if err := w.WriteMsg("/imu", ts, m); err != nil {
				t.Fatal(err)
			}
		case 1:
			m := &msgs.Image{Header: msgs.Header{Seq: uint32(i), Stamp: ts}, Height: 4, Width: 4, Encoding: "rgb8", Step: 12, Data: bytes.Repeat([]byte{byte(i)}, 48)}
			if err := w.WriteMsg("/camera/rgb/image_color", ts, m); err != nil {
				t.Fatal(err)
			}
		case 2:
			m := &msgs.TFMessage{Transforms: []msgs.TransformStamped{{Header: msgs.Header{Seq: uint32(i), Stamp: ts}, ChildFrameID: "/base"}}}
			if err := w.WriteMsg("/tf", ts, m); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return mf
}

func TestWriteOpenRoundTrip(t *testing.T) {
	mf := writeTestBag(t, WriterOptions{ChunkThreshold: 2048}, 90)
	r, err := OpenReader(mf, int64(len(mf.buf)))
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	if got := r.MessageCount(); got != 90 {
		t.Errorf("MessageCount = %d, want 90", got)
	}
	topics := r.Topics()
	want := []string{"/camera/rgb/image_color", "/imu", "/tf"}
	if len(topics) != 3 {
		t.Fatalf("Topics = %v", topics)
	}
	for i, tp := range want {
		if topics[i] != tp {
			t.Errorf("topic[%d] = %s, want %s", i, topics[i], tp)
		}
	}
	if r.ChunkCount() < 2 {
		t.Errorf("expected multiple chunks at 2 KiB threshold, got %d", r.ChunkCount())
	}
	start, end := r.TimeRange()
	if start != (bagio.Time{Sec: 1000, NSec: 0}) {
		t.Errorf("start = %v", start)
	}
	if end != (bagio.Time{Sec: 1089, NSec: 89}) {
		t.Errorf("end = %v", end)
	}
	if r.Stats().ChunkInfosScanned != r.ChunkCount() {
		t.Errorf("open scanned %d chunk infos, want %d (full traversal)", r.Stats().ChunkInfosScanned, r.ChunkCount())
	}
}

func TestReadMessagesAllTopics(t *testing.T) {
	mf := writeTestBag(t, WriterOptions{ChunkThreshold: 1024}, 60)
	r, err := OpenReader(mf, int64(len(mf.buf)))
	if err != nil {
		t.Fatal(err)
	}
	var count int
	var last bagio.Time
	err = r.ReadMessages(Query{}, func(m MessageRef) error {
		if m.Time.Before(last) {
			t.Errorf("messages out of order: %v after %v", m.Time, last)
		}
		last = m.Time
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 60 {
		t.Errorf("read %d messages, want 60", count)
	}
}

func TestReadMessagesByTopic(t *testing.T) {
	mf := writeTestBag(t, WriterOptions{ChunkThreshold: 1024}, 60)
	r, err := OpenReader(mf, int64(len(mf.buf)))
	if err != nil {
		t.Fatal(err)
	}
	var count int
	err = r.ReadMessages(Query{Topics: []string{"/imu"}}, func(m MessageRef) error {
		if m.Conn.Topic != "/imu" {
			t.Errorf("got topic %s, want /imu", m.Conn.Topic)
		}
		var imu msgs.Imu
		if err := imu.Unmarshal(m.Data); err != nil {
			t.Errorf("decode imu: %v", err)
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 20 {
		t.Errorf("read %d imu messages, want 20", count)
	}
}

func TestReadMessagesTimeRange(t *testing.T) {
	mf := writeTestBag(t, WriterOptions{ChunkThreshold: 1024}, 90)
	r, err := OpenReader(mf, int64(len(mf.buf)))
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Start: bagio.Time{Sec: 1030}, End: bagio.Time{Sec: 1059, NSec: 999}}
	var count int
	err = r.ReadMessages(q, func(m MessageRef) error {
		if m.Time.Before(q.Start) || q.End.Before(m.Time) {
			t.Errorf("message at %v outside [%v, %v]", m.Time, q.Start, q.End)
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 30 {
		t.Errorf("read %d messages in window, want 30", count)
	}
}

func TestReadMessagesTopicAndTime(t *testing.T) {
	mf := writeTestBag(t, WriterOptions{ChunkThreshold: 1024}, 90)
	r, err := OpenReader(mf, int64(len(mf.buf)))
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Topics: []string{"/tf"}, Start: bagio.Time{Sec: 1000}, End: bagio.Time{Sec: 1044, NSec: 999999999}}
	var count int
	err = r.ReadMessages(q, func(m MessageRef) error {
		if m.Conn.Topic != "/tf" {
			t.Errorf("topic %s", m.Conn.Topic)
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// /tf messages are at i%3==2: i in {2,5,...,44} → 15 messages.
	if count != 15 {
		t.Errorf("read %d tf messages in window, want 15", count)
	}
}

func TestCompressionGZRoundTrip(t *testing.T) {
	mf := writeTestBag(t, WriterOptions{ChunkThreshold: 4096, Compression: bagio.CompressionGZ}, 45)
	r, err := OpenReader(mf, int64(len(mf.buf)))
	if err != nil {
		t.Fatal(err)
	}
	var count int
	if err := r.ReadMessages(Query{}, func(m MessageRef) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 45 {
		t.Errorf("read %d messages, want 45", count)
	}
}

func TestWriterRejectsAfterClose(t *testing.T) {
	mf := &memFile{}
	w, err := NewWriter(mf, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddConnection("/x", "sensor_msgs/Imu"); err == nil {
		t.Error("AddConnection after Close should fail")
	}
	if err := w.WriteMessage(0, bagio.Time{}, nil); err == nil {
		t.Error("WriteMessage after Close should fail")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double Close should be nil, got %v", err)
	}
}

func TestWriterRejectsUnknownConnection(t *testing.T) {
	mf := &memFile{}
	w, err := NewWriter(mf, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMessage(5, bagio.Time{Sec: 1}, []byte("x")); err == nil {
		t.Error("WriteMessage on unknown connection should fail")
	}
}

func TestAddConnectionIdempotent(t *testing.T) {
	mf := &memFile{}
	w, err := NewWriter(mf, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := w.AddConnection("/t", "sensor_msgs/Imu")
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.AddConnection("/t", "sensor_msgs/Imu")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same topic/type got distinct connections %d, %d", a, b)
	}
	c, err := w.AddConnection("/t2", "sensor_msgs/Imu")
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different topic reused connection id")
	}
}

func TestOpenRejectsUnclosedBag(t *testing.T) {
	mf := &memFile{}
	w, err := NewWriter(mf, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMsg("/imu", bagio.Time{Sec: 1}, &msgs.Imu{}); err != nil {
		t.Fatal(err)
	}
	// No Close: index_pos stays 0.
	if _, err := OpenReader(mf, int64(len(mf.buf))); err == nil {
		t.Error("OpenReader accepted an unclosed bag")
	}
}

func TestOpenRejectsTruncatedIndex(t *testing.T) {
	mf := writeTestBag(t, WriterOptions{ChunkThreshold: 1024}, 30)
	if _, err := OpenReader(mf, int64(len(mf.buf))-10); err == nil {
		t.Error("OpenReader accepted truncated bag")
	}
}

func TestOnDiskBag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.bag")
	w, f, err := Create(path, WriterOptions{ChunkThreshold: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		ts := bagio.Time{Sec: uint32(10 + i)}
		if err := w.WriteMsg("/imu", ts, &msgs.Imu{Header: msgs.Header{Seq: uint32(i), Stamp: ts}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	r, rf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	if got := r.MessageCount(); got != 50 {
		t.Errorf("MessageCount = %d, want 50", got)
	}
	if _, _, err := Open(filepath.Join(dir, "missing.bag")); err == nil {
		t.Error("Open on missing file should fail")
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.bag"), []byte("not a bag"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(filepath.Join(dir, "junk.bag")); err == nil {
		t.Error("Open on junk file should fail")
	}
}

func TestInfoSummary(t *testing.T) {
	mf := writeTestBag(t, WriterOptions{ChunkThreshold: 1024}, 60)
	r, err := OpenReader(mf, int64(len(mf.buf)))
	if err != nil {
		t.Fatal(err)
	}
	info := r.Info()
	if info.Messages != 60 {
		t.Errorf("info.Messages = %d", info.Messages)
	}
	if len(info.Topics) != 3 {
		t.Errorf("info.Topics = %v", info.Topics)
	}
	for _, ti := range info.Topics {
		if ti.Messages != 20 {
			t.Errorf("topic %s has %d messages, want 20", ti.Topic, ti.Messages)
		}
		if ti.Type == "" {
			t.Errorf("topic %s missing type", ti.Topic)
		}
	}
	s := info.String()
	for _, want := range []string{"/imu", "/tf", "messages: 60"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("Info.String() missing %q", want)
		}
	}
}

func TestMessageCountByTopic(t *testing.T) {
	mf := writeTestBag(t, WriterOptions{ChunkThreshold: 1024}, 90)
	r, err := OpenReader(mf, int64(len(mf.buf)))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.MessageCount("/imu"); got != 30 {
		t.Errorf("imu count = %d", got)
	}
	if got := r.MessageCount("/imu", "/tf"); got != 60 {
		t.Errorf("imu+tf count = %d", got)
	}
	if got := r.MessageCount("/nope"); got != 0 {
		t.Errorf("missing topic count = %d", got)
	}
}

func TestQueryStatsGrow(t *testing.T) {
	mf := writeTestBag(t, WriterOptions{ChunkThreshold: 1024}, 90)
	r, err := OpenReader(mf, int64(len(mf.buf)))
	if err != nil {
		t.Fatal(err)
	}
	before := r.Stats()
	if err := r.ReadMessages(Query{Topics: []string{"/imu"}}, func(MessageRef) error { return nil }); err != nil {
		t.Fatal(err)
	}
	after := r.Stats()
	if after.ChunksRead <= before.ChunksRead {
		t.Error("query did not read chunks")
	}
	if after.MessagesScanned < 90 {
		t.Errorf("baseline should scan all %d index entries, scanned %d", 90, after.MessagesScanned)
	}
	if after.Seeks <= before.Seeks {
		t.Error("query did not seek")
	}
}

// Randomized consistency check: arbitrary topic subsets and windows agree
// with a brute-force model.
func TestReadMessagesRandomizedAgainstModel(t *testing.T) {
	const n = 120
	type modelMsg struct {
		topic string
		time  bagio.Time
	}
	var model []modelMsg
	mf := &memFile{}
	w, err := NewWriter(mf, WriterOptions{ChunkThreshold: 512})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	topics := []string{"/a", "/b", "/c", "/d"}
	for i := 0; i < n; i++ {
		ts := bagio.Time{Sec: uint32(100 + rng.Intn(50)), NSec: uint32(rng.Intn(1e9))}
		topic := topics[rng.Intn(len(topics))]
		m := &msgs.TransformStamped{Header: msgs.Header{Seq: uint32(i), Stamp: ts}}
		if err := w.WriteMsg(topic, ts, m); err != nil {
			t.Fatal(err)
		}
		model = append(model, modelMsg{topic: topic, time: ts})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(mf, int64(len(mf.buf)))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		sub := topics[:1+rng.Intn(len(topics))]
		start := bagio.Time{Sec: uint32(100 + rng.Intn(50))}
		end := start.Add(time.Duration(rng.Intn(30)) * time.Second)
		wantCount := 0
		for _, m := range model {
			inTopic := false
			for _, tp := range sub {
				if m.topic == tp {
					inTopic = true
				}
			}
			if inTopic && !m.time.Before(start) && !end.Before(m.time) {
				wantCount++
			}
		}
		got := 0
		err := r.ReadMessages(Query{Topics: sub, Start: start, End: end}, func(MessageRef) error {
			got++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != wantCount {
			t.Errorf("trial %d: topics=%v window=[%v,%v]: got %d, want %d", trial, sub, start, end, got, wantCount)
		}
	}
}

// Property: arbitrary message streams (random topics, times, payload
// sizes, chunk thresholds) survive a full write→open→read round trip
// with counts, order and payloads intact.
func TestFullRoundTripQuick(t *testing.T) {
	type spec struct {
		TopicIdx uint8
		NSec     uint32
		Size     uint8
	}
	f := func(specs []spec, threshold uint16, gz bool) bool {
		if len(specs) == 0 {
			return true
		}
		if len(specs) > 200 {
			specs = specs[:200]
		}
		comp := bagio.CompressionNone
		if gz {
			comp = bagio.CompressionGZ
		}
		mf := &memFile{}
		w, err := NewWriter(mf, WriterOptions{
			ChunkThreshold: 256 + int(threshold)%4096,
			Compression:    comp,
		})
		if err != nil {
			return false
		}
		topics := []string{"/a", "/b", "/c"}
		type rec struct {
			topic string
			time  bagio.Time
			data  []byte
		}
		var want []rec
		for i, s := range specs {
			topic := topics[int(s.TopicIdx)%len(topics)]
			// Monotone timestamps keep the expected global order simple.
			ts := bagio.Time{Sec: uint32(i + 1), NSec: s.NSec % 1e9}
			data := bytes.Repeat([]byte{byte(i)}, 1+int(s.Size)%64)
			conn, err := w.AddConnection(topic, "x/Y")
			if err != nil {
				return false
			}
			if err := w.WriteMessage(conn, ts, data); err != nil {
				return false
			}
			want = append(want, rec{topic: topic, time: ts, data: data})
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := OpenReader(mf, int64(len(mf.buf)))
		if err != nil {
			return false
		}
		if r.MessageCount() != uint64(len(want)) {
			return false
		}
		i := 0
		err = r.ReadMessages(Query{}, func(m MessageRef) error {
			if i >= len(want) {
				return fmt.Errorf("extra message")
			}
			exp := want[i]
			if m.Conn.Topic != exp.topic || m.Time != exp.time || !bytes.Equal(m.Data, exp.data) {
				return fmt.Errorf("mismatch at %d", i)
			}
			i++
			return nil
		})
		return err == nil && i == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
