package rosbag

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/bagio"
	"repro/internal/obs"
)

// ScanFunc receives each message during a sequential scan, in file order.
// The data slice is only valid for the duration of the call.
type ScanFunc func(conn *bagio.Connection, t bagio.Time, data []byte) error

// Scan iterates every message of a bag in file (chronological) order with
// a single pass and no index usage — the access pattern of BORA's data
// organizer, which "re-distributes data to target sub-directories by
// scanning the file once" (Fig 6). Connections are discovered from the
// records embedded in chunks; the index section at the tail is skipped.
func Scan(r io.ReaderAt, size int64, fn ScanFunc) error {
	return ScanObs(r, size, nil, fn)
}

// ScanObs is Scan recording the pass to reg as one rosbag.scan span
// carrying the total payload bytes delivered, with one rosbag.scan_chunk
// child span per chunk. A nil registry disables recording.
func ScanObs(r io.ReaderAt, size int64, reg *obs.Registry, fn ScanFunc) error {
	return scanObs(r, size, obs.Span{}, reg, fn)
}

// ScanSpan is ScanObs nested under parent: the rosbag.scan span becomes
// a child of parent's trace context and records to parent's registry. A
// zero parent disables recording.
func ScanSpan(r io.ReaderAt, size int64, parent obs.Span, fn ScanFunc) error {
	return scanObs(r, size, parent, parent.Registry(), fn)
}

func scanObs(r io.ReaderAt, size int64, parent obs.Span, reg *obs.Registry, fn ScanFunc) error {
	op := reg.Op("rosbag.scan")
	if op == nil {
		return scan(r, size, obs.Span{}, nil, fn)
	}
	sp := parent.ChildOp(op)
	var delivered int64
	err := scan(r, size, sp, reg.Op("rosbag.scan_chunk"), func(conn *bagio.Connection, t bagio.Time, data []byte) error {
		delivered += int64(len(data))
		return fn(conn, t, data)
	})
	if err != nil {
		sp.EndErr(err)
		return err
	}
	sp.EndBytes(delivered)
	return nil
}

func scan(r io.ReaderAt, size int64, sp obs.Span, chunkOp *obs.Op, fn ScanFunc) error {
	sc := bagio.NewRecordScanner(io.NewSectionReader(r, 0, size))
	if err := sc.ReadMagic(); err != nil {
		return err
	}
	first, err := sc.ReadRecord()
	if err != nil {
		return fmt.Errorf("rosbag: scan bag header: %w", err)
	}
	op, err := first.Op()
	if err != nil {
		return err
	}
	if op != bagio.OpBagHeader {
		return fmt.Errorf("rosbag: first record has op %#x, want bag header", op)
	}
	bh, err := bagio.DecodeBagHeader(first)
	if err != nil {
		return err
	}
	conns := map[uint32]*bagio.Connection{}
	for {
		// The chunk section ends at index_pos; everything after it is
		// connection/chunk-info records we do not need for a scan.
		if bh.IndexPos != 0 && uint64(sc.Offset()) >= bh.IndexPos {
			return nil
		}
		rec, err := sc.ReadRecord()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		op, err := rec.Op()
		if err != nil {
			return err
		}
		switch op {
		case bagio.OpChunk:
			csp := sp.ChildOp(chunkOp)
			inner, err := bagio.DecodeChunk(rec)
			if err != nil {
				csp.EndErr(err)
				return err
			}
			if err := scanChunkRecords(inner, conns, fn); err != nil {
				csp.EndErr(err)
				return err
			}
			csp.EndBytes(int64(len(inner)))
		case bagio.OpIndexData:
			// Interleaved per-chunk index records: not needed.
		case bagio.OpConnection:
			c, err := bagio.DecodeConnection(rec)
			if err != nil {
				return err
			}
			if _, dup := conns[c.ID]; !dup {
				conns[c.ID] = c
			}
		case bagio.OpChunkInfo:
			// Reached the index section of an unclosed-header bag.
			return nil
		default:
			return fmt.Errorf("rosbag: unexpected op %#x at offset %d during scan", op, sc.Offset())
		}
	}
}

// scanChunkRecords iterates the records inside an uncompressed chunk.
func scanChunkRecords(inner []byte, conns map[uint32]*bagio.Connection, fn ScanFunc) error {
	sc := bagio.NewRecordScanner(bytes.NewReader(inner))
	for {
		rec, err := sc.ReadRecord()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		op, err := rec.Op()
		if err != nil {
			return err
		}
		switch op {
		case bagio.OpConnection:
			c, err := bagio.DecodeConnection(rec)
			if err != nil {
				return err
			}
			if _, dup := conns[c.ID]; !dup {
				conns[c.ID] = c
			}
		case bagio.OpMessageData:
			md, err := bagio.DecodeMessageData(rec)
			if err != nil {
				return err
			}
			c := conns[md.Conn]
			if c == nil {
				return fmt.Errorf("rosbag: message on connection %d before its connection record", md.Conn)
			}
			if err := fn(c, md.Time, md.Data); err != nil {
				return err
			}
		default:
			return fmt.Errorf("rosbag: unexpected op %#x inside chunk", op)
		}
	}
}
