// Swarm analysis: the Tianhe-1A scenario of Section IV-E.
//
// Part 1 runs a REAL concurrent extraction: several robot bags are
// organized into containers and one goroutine per robot opens its bag
// and extracts the Robot SLAM topics simultaneously (the multi-angle
// "Bullet Time" acquisition).
//
// Part 2 replays the PAPER-SCALE experiment (Fig 17) on the Lustre cost
// model: 10/50/100 robots × 21/42 GB bags, reporting the open and query
// improvements the paper measures.
//
//	go run ./examples/swarmanalysis
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/swarm"
	"repro/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "bora-swarm-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Println("-- real concurrent extraction (6 robots, scaled-down bags) --")
	res, err := swarm.Real(swarm.RealConfig{Robots: 6, Seconds: 2, Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d robots opened in %v; extracted %d messages (%d bytes) concurrently in %v\n",
		res.Robots, res.OpenTime, res.MessagesRead, res.BytesRead, res.QueryTime)

	fmt.Println()
	fmt.Println("-- paper-scale swarm on the Tianhe-1A Lustre model (Fig 17) --")
	fmt.Printf("%-8s %-7s %-12s %-12s %-10s %-10s\n",
		"bag", "robots", "open(base)", "open(bora)", "open-impr", "query-impr")
	for _, size := range []int64{21 * workload.GB, 42 * workload.GB} {
		for _, robots := range []int{10, 50, 100} {
			r, err := swarm.Sim(swarm.SimConfig{Robots: robots, BagBytes: size})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %-7d %-12v %-12v %-10s %-10s\n",
				fmt.Sprintf("%dGB", size/workload.GB), robots,
				r.BaselineOpen.Round(1e6), r.BoraOpen.Round(1e4),
				fmt.Sprintf("%.0fx", r.OpenImprovement()),
				fmt.Sprintf("%.1fx", r.QueryImprovement()))
		}
	}
	fmt.Println("\npaper reference: up to 3,113x open and >10x overall at 100 × 42GB")
}
