// Quickstart: record a bag, organize it with BORA, and query it.
//
// This walks the three BORA operations end to end on real files:
// a synthetic Handheld-SLAM bag is recorded (Table II topic mix),
// duplicated into a BORA container (Fig 6), and then queried by topic
// (Fig 7) and by topic + time range (Fig 8).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bagio"
	"repro/internal/core"
	"repro/internal/rosbag"
	"repro/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "bora-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Record: synthesize a small Handheld SLAM bag (images scaled
	// down 2000x so the demo stays quick).
	src := filepath.Join(dir, "handheld_slam.bag")
	n, err := workload.WriteHandheldSLAMBag(src, workload.SyntheticOptions{Seconds: 3, ScaleDown: 2000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %s: %d messages\n", src, n)

	// Peek with the stock reader (note the open-time chunk traversal).
	r, f, err := rosbag.Open(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stock open traversed %d chunk infos\n", r.Stats().ChunkInfosScanned)
	f.Close()

	// 2. Duplicate into a BORA container.
	backend, err := core.New(filepath.Join(dir, "backend"), core.Options{TimeWindow: time.Second})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	bag, stats, err := backend.Duplicate(src, "handheld_slam")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("duplicated into container: %d topics, %d messages in %v\n",
		stats.Topics, stats.Messages, time.Since(start))
	fmt.Printf("topics: %v\n", bag.Topics())

	// 3a. Query by topic (Fig 7): whole-topic sequential reads.
	start = time.Now()
	var imuCount int
	err = bag.Query(core.QuerySpec{Topics: []string{workload.TopicIMU}}, func(m core.MessageRef) error {
		imuCount++
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query by topic /imu: %d messages in %v\n", imuCount, time.Since(start))

	// 3b. Query by topics + time range (Fig 8): the coarse-grain time
	// index bounds the scan before the fine-grain filter.
	tstart, tend, err := timeRangeOf(bag)
	if err != nil {
		log.Fatal(err)
	}
	mid := tstart.Add(tend.Sub(tstart) / 3)
	stop := mid.Add(time.Second)
	start = time.Now()
	var windowCount int
	err = bag.Query(core.QuerySpec{Topics: []string{workload.TopicIMU, workload.TopicTF}, Start: mid, End: stop}, func(m core.MessageRef) error {
		windowCount++
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	st := bag.Stats()
	fmt.Printf("time-range query [%s, %s]: %d messages in %v (scanned %d entries across %d windows)\n",
		mid, stop, windowCount, time.Since(start), st.EntriesScanned, st.WindowsScanned)
}

// timeRangeOf finds the bag's overall time extent from the container.
func timeRangeOf(bag *core.Bag) (bagio.Time, bagio.Time, error) {
	var start, end bagio.Time
	for i, name := range bag.Topics() {
		t, err := bag.Container().Topic(name)
		if err != nil {
			return start, end, err
		}
		s, e, err := t.TimeRange()
		if err != nil {
			return start, end, err
		}
		if i == 0 || s.Before(start) {
			start = s
		}
		if end.Before(e) {
			end = e
		}
	}
	return start, end, nil
}
