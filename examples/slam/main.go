// SLAM extraction pipeline: the Robot SLAM application of Table III.
//
// A robot's bag is organized with BORA, then the pipeline extracts the
// Robot SLAM topic set (depth images, RGB images, IMU), integrates the
// IMU stream into a dead-reckoned trajectory, and pairs depth/RGB frames
// by timestamp — the data-preparation phase that precedes point-cloud
// construction in a real SLAM system ("SLAM needs to extract image data
// from bag files to build a point cloud").
//
//	go run ./examples/slam
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bagio"
	"repro/internal/core"
	"repro/internal/msgs"
	"repro/internal/workload"
)

// frame pairs a depth and RGB image by timestamp.
type frame struct {
	stamp bagio.Time
	depth *msgs.Image
	rgb   *msgs.Image
}

func main() {
	dir, err := os.MkdirTemp("", "bora-slam-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	src := filepath.Join(dir, "robot.bag")
	if _, err := workload.WriteHandheldSLAMBag(src, workload.SyntheticOptions{Seconds: 4, ScaleDown: 2000}); err != nil {
		log.Fatal(err)
	}
	backend, err := core.New(filepath.Join(dir, "backend"), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	bag, _, err := backend.Duplicate(src, "robot")
	if err != nil {
		log.Fatal(err)
	}

	app, err := workload.AppByAbbrev("RS")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Robot SLAM extraction over topics %v\n", app.Topics)

	// Extract in global time order so IMU integration and frame pairing
	// see a consistent timeline.
	var (
		frames     []frame
		pending    = map[int64]*frame{} // stamp → partially filled frame
		velocity   msgs.Vector3
		position   msgs.Vector3
		lastImu    bagio.Time
		imuSamples int
	)
	start := time.Now()
	err = bag.Query(core.QuerySpec{Topics: app.Topics, Order: core.OrderTime}, func(m core.MessageRef) error {
		switch m.Conn.Type {
		case "sensor_msgs/Imu":
			var imu msgs.Imu
			if err := imu.Unmarshal(m.Data); err != nil {
				return err
			}
			// Dead-reckoning: integrate acceleration twice (gravity
			// removed) — the pose prior SLAM uses between visual frames.
			if imuSamples > 0 {
				dt := m.Time.Sub(lastImu).Seconds()
				ax, ay, az := imu.LinearAcceleration.X, imu.LinearAcceleration.Y, imu.LinearAcceleration.Z+9.81
				velocity.X += ax * dt
				velocity.Y += ay * dt
				velocity.Z += az * dt
				position.X += velocity.X * dt
				position.Y += velocity.Y * dt
				position.Z += velocity.Z * dt
			}
			lastImu = m.Time
			imuSamples++
		case "sensor_msgs/Image":
			var img msgs.Image
			if err := img.Unmarshal(m.Data); err != nil {
				return err
			}
			key := m.Time.Nanos() / int64(40*time.Millisecond) // pair within a 40ms bucket
			fr, ok := pending[key]
			if !ok {
				fr = &frame{stamp: m.Time}
				pending[key] = fr
			}
			if m.Conn.Topic == workload.TopicDepthImage {
				fr.depth = &img
			} else {
				fr.rgb = &img
			}
			if fr.depth != nil && fr.rgb != nil {
				frames = append(frames, *fr)
				delete(pending, key)
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	drift := math.Sqrt(position.X*position.X + position.Y*position.Y + position.Z*position.Z)
	fmt.Printf("extracted %d paired RGB-D frames and %d IMU samples in %v\n",
		len(frames), imuSamples, elapsed)
	fmt.Printf("dead-reckoned drift after %d samples: %.3f m\n", imuSamples, drift)
	if len(frames) > 0 {
		first, last := frames[0].stamp, frames[len(frames)-1].stamp
		fmt.Printf("frame window: %s .. %s (%.1f fps paired)\n",
			first, last, float64(len(frames)-1)/last.Sub(first).Seconds())
	}
	st := bag.Stats()
	fmt.Printf("BORA stats: %d messages, %d bytes, %d seeks\n",
		st.MessagesRead, st.BytesRead, st.Seeks)
}
