// Time-range queries: stock rosbag path vs BORA, measured for real.
//
// Both systems answer the same two-dimensional queries —
// (topics, start_time, end_time) — over the same recording. The stock
// path re-opens the bag (chunk-info traversal) and merge-sorts index
// entries; BORA opens the container (tag table only) and uses the
// coarse-grain time index. Real wall-clock times are printed for a
// stair-step of widening windows, the protocol of Figs 13/14.
//
//	go run ./examples/timequery
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bagio"
	"repro/internal/core"
	"repro/internal/rosbag"
	"repro/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "bora-timequery-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	src := filepath.Join(dir, "recording.bag")
	if _, err := workload.WriteHandheldSLAMBag(src, workload.SyntheticOptions{
		Seconds: 6, ScaleDown: 4000,
		Writer: rosbag.WriterOptions{ChunkThreshold: 64 * 1024},
	}); err != nil {
		log.Fatal(err)
	}
	backend, err := core.New(filepath.Join(dir, "backend"), core.Options{TimeWindow: 500 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := backend.Duplicate(src, "recording"); err != nil {
		log.Fatal(err)
	}

	topics := []string{workload.TopicIMU, workload.TopicTF}
	base := bagio.TimeFromNanos(int64(1_500_000_000) * 1e9)
	fmt.Printf("query topics %v with widening windows:\n\n", topics)
	fmt.Printf("%-8s %-22s %-22s %s\n", "window", "stock rosbag", "BORA", "speedup")

	for _, seconds := range []int{1, 2, 4, 6} {
		end := base.Add(time.Duration(seconds) * time.Second)

		// Stock path: open (chunk-info traversal) + indexed time query.
		stockStart := time.Now()
		r, f, err := rosbag.Open(src)
		if err != nil {
			log.Fatal(err)
		}
		var stockCount int
		err = r.ReadMessages(rosbag.Query{Topics: topics, Start: base, End: end}, func(m rosbag.MessageRef) error {
			stockCount++
			return nil
		})
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		stockTime := time.Since(stockStart)

		// BORA path: container open + coarse-grain window query.
		boraStart := time.Now()
		bag, err := backend.Open("recording")
		if err != nil {
			log.Fatal(err)
		}
		var boraCount int
		err = bag.Query(core.QuerySpec{Topics: topics, Start: base, End: end}, func(m core.MessageRef) error {
			boraCount++
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		boraTime := time.Since(boraStart)

		if stockCount != boraCount {
			log.Fatalf("result mismatch: stock %d vs bora %d messages", stockCount, boraCount)
		}
		fmt.Printf("%-8s %-22s %-22s %.2fx   (%d msgs, both paths agree)\n",
			fmt.Sprintf("%ds", seconds),
			stockTime, boraTime,
			float64(stockTime)/float64(boraTime), stockCount)
	}
}
