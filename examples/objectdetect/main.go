// Dynamic Object extraction: the DO application of Table III.
//
// This is the mixed structured/unstructured acquisition scenario the
// paper highlights: numerous small structured records (TF transforms,
// camera pose info, marker arrays) interleaved with large RGB images.
// The pipeline extracts all four topics, associates each detected
// marker with the camera frame and pose that observed it, and reports
// the label dataset a detector would train on.
//
//	go run ./examples/objectdetect
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bagio"
	"repro/internal/core"
	"repro/internal/msgs"
	"repro/internal/workload"
)

// observation is one training sample: a marker seen from a camera pose.
type observation struct {
	stamp    bagio.Time
	markerID int32
	frameSeq uint32 // RGB frame that observed it
	hasPose  bool
}

func main() {
	dir, err := os.MkdirTemp("", "bora-objdetect-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	src := filepath.Join(dir, "scene.bag")
	if _, err := workload.WriteHandheldSLAMBag(src, workload.SyntheticOptions{Seconds: 3, ScaleDown: 2000}); err != nil {
		log.Fatal(err)
	}
	backend, err := core.New(filepath.Join(dir, "backend"), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	bag, _, err := backend.Duplicate(src, "scene")
	if err != nil {
		log.Fatal(err)
	}

	app, err := workload.AppByAbbrev("DO")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Dynamic Object extraction over topics %v\n", app.Topics)

	var (
		obs        []observation
		lastFrame  uint32
		haveFrame  bool
		havePose   bool
		tfCount    int
		imageBytes int64
	)
	start := time.Now()
	err = bag.Query(core.QuerySpec{Topics: app.Topics, Order: core.OrderTime}, func(m core.MessageRef) error {
		switch m.Conn.Type {
		case "sensor_msgs/Image":
			var img msgs.Image
			if err := img.Unmarshal(m.Data); err != nil {
				return err
			}
			lastFrame = img.Header.Seq
			haveFrame = true
			imageBytes += int64(len(img.Data))
		case "sensor_msgs/CameraInfo":
			havePose = true
		case "tf2_msgs/TFMessage":
			var tf msgs.TFMessage
			if err := tf.Unmarshal(m.Data); err != nil {
				return err
			}
			tfCount += len(tf.Transforms)
		case "visualization_msgs/MarkerArray":
			var ma msgs.MarkerArray
			if err := ma.Unmarshal(m.Data); err != nil {
				return err
			}
			if !haveFrame {
				return nil // no frame observed yet
			}
			for i := range ma.Markers {
				obs = append(obs, observation{
					stamp:    m.Time,
					markerID: ma.Markers[i].ID,
					frameSeq: lastFrame,
					hasPose:  havePose,
				})
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	withPose := 0
	byMarker := map[int32]int{}
	for _, o := range obs {
		if o.hasPose {
			withPose++
		}
		byMarker[o.markerID]++
	}
	fmt.Printf("built %d marker observations (%d with camera pose) across %d distinct markers in %v\n",
		len(obs), withPose, len(byMarker), elapsed)
	fmt.Printf("consumed %d TF transforms and %d bytes of image data\n", tfCount, imageBytes)
	st := bag.Stats()
	fmt.Printf("BORA stats: %d messages read, %d entries scanned\n", st.MessagesRead, st.EntriesScanned)
}
