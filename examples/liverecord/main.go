// Live recording: the full Fig 1c pipeline.
//
// A ROS computation graph is assembled in-process: a Camera node and a
// Gyroscope node publish to two topics; `rosbag record`'s equivalent — a
// Recorder node — subscribes to both and writes sample.bag. The bag is
// then organized into a BORA container and queried, and the same data is
// also recorded ONLINE into a second container (no intermediate bag),
// demonstrating the online-BORA mode the paper discusses in §III-C.
// The online half uses a second graph.Recorder pointed at the container
// recorder — the same recording node serves both destinations, because
// both implement core.RecordSink — and a concurrent Follow query tails
// the live container while it is still being written.
//
//	go run ./examples/liverecord
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/bagio"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/msgs"
	"repro/internal/rosbag"
	"repro/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "bora-live-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- assemble the computation graph (Fig 1c) ---
	g := graph.New()
	camera, err := g.NewNode("camera")
	if err != nil {
		log.Fatal(err)
	}
	gyro, err := g.NewNode("gyroscope")
	if err != nil {
		log.Fatal(err)
	}
	imgPub, err := camera.Advertise(workload.TopicRGBImage, "sensor_msgs/Image")
	if err != nil {
		log.Fatal(err)
	}
	imuPub, err := gyro.Advertise(workload.TopicIMU, "sensor_msgs/Imu")
	if err != nil {
		log.Fatal(err)
	}

	// rosbag record -O sample.bag Topic1 Topic2
	bagPath := filepath.Join(dir, "sample.bag")
	w, f, err := rosbag.Create(bagPath, rosbag.WriterOptions{ChunkThreshold: 64 * 1024})
	if err != nil {
		log.Fatal(err)
	}
	rec, err := graph.NewRecorder(g, "recorder", w, workload.TopicRGBImage, workload.TopicIMU)
	if err != nil {
		log.Fatal(err)
	}

	// Online BORA: the same streams recorded straight into a container.
	backend, err := core.New(filepath.Join(dir, "backend"), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	online, err := backend.CreateLiveBag("sample_online", 0)
	if err != nil {
		log.Fatal(err)
	}
	// The identical recorder node records into the live container: both
	// rosbag.Writer and core.Recorder are core.RecordSinks.
	onlineRec, err := graph.NewRecorder(g, "bora_online", online, workload.TopicRGBImage, workload.TopicIMU)
	if err != nil {
		log.Fatal(err)
	}

	// Tail the live container while it records: a Follow query streams
	// everything already on disk, then blocks for the live tail until
	// the recording seals.
	tailDone := make(chan int, 1)
	go func() {
		liveView, err := backend.Open("sample_online")
		if err != nil {
			log.Printf("follow open: %v", err)
			tailDone <- -1
			return
		}
		n := 0
		err = liveView.Query(core.QuerySpec{Follow: true}, func(core.MessageRef) error {
			n++
			return nil
		})
		if err != nil {
			log.Printf("follow query: %v", err)
		}
		tailDone <- n
	}()

	// --- drive the sensors: 2 seconds at 30 Hz video + 100 Hz IMU ---
	base := int64(1_600_000_000) * 1e9
	for tick := 0; tick < 200; tick++ {
		ts := bagio.TimeFromNanos(base + int64(tick)*10_000_000) // 10 ms ticks
		if tick%10 == 0 {                                        // ~30 Hz-ish video on the 10ms grid
			img := &msgs.Image{
				Header: msgs.Header{Seq: uint32(tick / 10), Stamp: ts, FrameID: "/camera"},
				Height: 8, Width: 8, Encoding: "rgb8", Step: 24,
				Data: make([]byte, 192),
			}
			if err := imgPub.Publish(ts, img); err != nil {
				log.Fatal(err)
			}
		}
		imu := &msgs.Imu{Header: msgs.Header{Seq: uint32(tick), Stamp: ts, FrameID: "/imu"}, Orientation: msgs.Identity()}
		if err := imuPub.Publish(ts, imu); err != nil {
			log.Fatal(err)
		}
	}

	// --- tear down the graph ---
	if err := rec.Stop(); err != nil {
		log.Fatal(err)
	}
	if err := onlineRec.Stop(); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorder wrote %d messages to %s (dropped %d)\n", rec.Recorded(), bagPath, rec.Dropped())

	// --- offline path: duplicate the recorded bag, then query ---
	bag, stats, err := backend.Duplicate(bagPath, "sample")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("duplicated: %d topics, %d messages\n", stats.Topics, stats.Messages)
	var imuCount int
	if err := bag.Query(core.QuerySpec{Topics: []string{workload.TopicIMU}}, func(core.MessageRef) error {
		imuCount++
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline container: %d IMU messages\n", imuCount)

	// --- online path: the container recorded live, no bag in between ---
	liveBag, err := online.Close()
	if err != nil {
		log.Fatal(err)
	}
	tailCount := <-tailDone // sealing ends the Follow stream
	liveCount, err := liveBag.MessageCount()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online container:  %d messages recorded with no intermediate bag\n", liveCount)
	fmt.Printf("follow query:      %d messages tailed live\n", tailCount)
	if liveCount != int(rec.Recorded()) {
		log.Fatalf("online (%d) and offline (%d) paths disagree", liveCount, rec.Recorded())
	}
	fmt.Println("online and offline paths agree")
}
