// Command borabench regenerates the tables and figures of the BORA
// paper's evaluation. Each experiment prints the same rows/series the
// paper reports, produced by the access-path simulators over
// paper-scale synthetic bag layouts (see DESIGN.md §3 for the
// hardware-substitution argument).
//
// Usage:
//
//	borabench -list
//	borabench -exp fig10
//	borabench -all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == errUsage {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "borabench:", err)
		os.Exit(1)
	}
}

var errUsage = fmt.Errorf("usage error")

// run executes the CLI against the given argument list and output.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("borabench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiment ids and exit")
	exp := fs.String("exp", "", "run one experiment (e.g. fig10, table1)")
	all := fs.Bool("all", false, "run every experiment")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: borabench [-list] [-exp <id>] [-all]\n\nexperiments:\n  %s\n",
			strings.Join(bench.IDs(), "\n  "))
	}
	if err := fs.Parse(args); err != nil {
		return errUsage
	}

	switch {
	case *list:
		for _, id := range bench.IDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	case *exp != "":
		t, err := bench.Run(*exp)
		if err != nil {
			return err
		}
		t.Fprint(out)
		return nil
	case *all:
		tables, err := bench.RunAll()
		for _, t := range tables {
			t.Fprint(out)
		}
		return err
	default:
		fs.Usage()
		return errUsage
	}
}
