// Command borabench regenerates the tables and figures of the BORA
// paper's evaluation. Each experiment prints the same rows/series the
// paper reports, produced by the access-path simulators over
// paper-scale synthetic bag layouts (see DESIGN.md §3 for the
// hardware-substitution argument).
//
// Usage:
//
//	borabench -list
//	borabench -exp fig10
//	borabench -all
//	borabench -metrics DIR -exp fig10
//
// With -metrics DIR, each experiment runs against a fresh obs registry
// and its snapshot is written to DIR/<id>.obs.json next to the printed
// table — per-op counts, bytes and log2 latency histograms for every
// instrumented layer the experiment exercised.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == errUsage {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "borabench:", err)
		os.Exit(1)
	}
}

var errUsage = fmt.Errorf("usage error")

// run executes the CLI against the given argument list and output.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("borabench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiment ids and exit")
	exp := fs.String("exp", "", "run one experiment (e.g. fig10, table1)")
	all := fs.Bool("all", false, "run every experiment")
	metricsDir := fs.String("metrics", "", "write a <id>.obs.json observability sidecar per experiment to this directory")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: borabench [-list] [-exp <id>] [-all] [-metrics DIR]\n\nexperiments:\n  %s\n",
			strings.Join(bench.IDs(), "\n  "))
	}
	if err := fs.Parse(args); err != nil {
		return errUsage
	}

	// runOne executes one experiment, with its own registry when a
	// sidecar directory was requested so the per-experiment files do not
	// bleed into each other.
	runOne := func(id string) (*bench.Table, error) {
		if *metricsDir == "" {
			return bench.Run(id)
		}
		reg := obs.NewRegistry()
		t, err := bench.RunObs(id, reg)
		if werr := writeSidecar(*metricsDir, id, reg); werr != nil && err == nil {
			err = werr
		}
		return t, err
	}

	switch {
	case *list:
		for _, id := range bench.IDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	case *exp != "":
		t, err := runOne(*exp)
		if err != nil {
			return err
		}
		t.Fprint(out)
		return nil
	case *all:
		for _, id := range bench.IDs() {
			t, err := runOne(id)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			t.Fprint(out)
		}
		return nil
	default:
		fs.Usage()
		return errUsage
	}
}

// writeSidecar dumps one experiment's obs snapshot as JSON. An empty
// registry (e.g. the experiment id did not resolve, so nothing ran)
// leaves no file behind.
func writeSidecar(dir, id string, reg *obs.Registry) error {
	snap := reg.Snapshot()
	if len(snap.Counters) == 0 && len(snap.Ops) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := snap.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, id+".obs.json"), data, 0o644)
}
