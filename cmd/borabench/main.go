// Command borabench regenerates the tables and figures of the BORA
// paper's evaluation. Each experiment prints the same rows/series the
// paper reports, produced by the access-path simulators over
// paper-scale synthetic bag layouts (see DESIGN.md §3 for the
// hardware-substitution argument).
//
// Usage:
//
//	borabench -list
//	borabench -exp fig10
//	borabench -all
//	borabench -metrics DIR -exp fig10
//	borabench -trace DIR -exp fig10
//
// With -metrics DIR, each experiment runs against a fresh obs registry
// and its snapshot is written to DIR/<id>.obs.json next to the printed
// table — per-op counts, bytes and log2 latency histograms for every
// instrumented layer the experiment exercised. Experiments that split
// their run into phases (e.g. validate-real's organize vs. query)
// additionally write one DIR/<id>.<phase>.obs.json delta per phase.
//
// With -trace DIR, each experiment's registry also carries a tracer and
// the recorded spans are written to DIR/<id>.trace.json as Chrome
// trace-event JSON, loadable in chrome://tracing or Perfetto. Simulated
// experiments emit sim-time spans (their virtual clocks are
// obs-attached), real-I/O experiments wall-time spans; both flags
// compose and may point at the same directory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == errUsage {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "borabench:", err)
		os.Exit(1)
	}
}

var errUsage = fmt.Errorf("usage error")

// run executes the CLI against the given argument list and output.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("borabench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiment ids and exit")
	exp := fs.String("exp", "", "run one experiment (e.g. fig10, table1)")
	all := fs.Bool("all", false, "run every experiment")
	metricsDir := fs.String("metrics", "", "write a <id>.obs.json observability sidecar per experiment to this directory")
	traceDir := fs.String("trace", "", "write a <id>.trace.json Chrome trace-event sidecar per experiment to this directory")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: borabench [-list] [-exp <id>] [-all] [-metrics DIR] [-trace DIR]\n\nexperiments:\n  %s\n",
			strings.Join(bench.IDs(), "\n  "))
	}
	if err := fs.Parse(args); err != nil {
		return errUsage
	}

	// runOne executes one experiment, with its own registry (and tracer)
	// when a sidecar directory was requested so the per-experiment files
	// do not bleed into each other.
	runOne := func(id string) (*bench.Table, error) {
		if *metricsDir == "" && *traceDir == "" {
			return bench.Run(id)
		}
		reg := obs.NewRegistry()
		var tr *obs.Tracer
		if *traceDir != "" {
			tr = obs.NewTracer(0)
			reg.AttachTracer(tr)
		}
		t, err := bench.RunObs(id, reg)
		if *metricsDir != "" {
			if werr := writeSidecar(*metricsDir, id, reg.Snapshot()); werr != nil && err == nil {
				err = werr
			}
			if t != nil {
				for _, ph := range t.Phases {
					if werr := writeSidecar(*metricsDir, id+"."+ph.Name, ph.Snap); werr != nil && err == nil {
						err = werr
					}
				}
			}
		}
		if tr != nil {
			if werr := writeTrace(*traceDir, id, tr); werr != nil && err == nil {
				err = werr
			}
		}
		return t, err
	}

	switch {
	case *list:
		for _, id := range bench.IDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	case *exp != "":
		t, err := runOne(*exp)
		if err != nil {
			return err
		}
		t.Fprint(out)
		return nil
	case *all:
		for _, id := range bench.IDs() {
			t, err := runOne(id)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			t.Fprint(out)
		}
		return nil
	default:
		fs.Usage()
		return errUsage
	}
}

// writeSidecar dumps one obs snapshot as JSON. An empty snapshot (e.g.
// the experiment id did not resolve, so nothing ran; or a phase with no
// activity) leaves no file behind.
func writeSidecar(dir, id string, snap obs.Snapshot) error {
	if len(snap.Counters) == 0 && len(snap.Ops) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := snap.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, id+".obs.json"), data, 0o644)
}

// writeTrace dumps one experiment's recorded spans as Chrome trace-event
// JSON. A tracer that saw no events leaves no file behind.
func writeTrace(dir, id string, tr *obs.Tracer) error {
	if len(tr.Events()) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".trace.json"))
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
