package main

import (
	"strings"
	"testing"
)

func TestListContainsAllExperiments(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table1", "fig2", "fig10", "fig17", "ablation-window"} {
		if !strings.Contains(sb.String(), id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "table3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Handheld SLAM") {
		t.Errorf("table3 output missing apps:\n%s", sb.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "fig99"}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestNoArgsIsUsageError(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err != errUsage {
		t.Errorf("err = %v, want usage error", err)
	}
}
