package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/build"
	"repro/internal/core"
	"repro/internal/pool"
)

// windowFlags registers -start/-end on fs and returns a resolver that
// reports them as set-or-nil pointers (call it after fs.Parse). The
// pointer form matters: an explicit `-start 0` or `-end 0` is a real
// epoch bound, not "unset" — value-based `> 0` guards cannot tell the
// two apart, which is exactly the TransformSpec set-ness distinction
// the build spec file encodes with present-vs-absent JSON fields.
func windowFlags(fs *flag.FlagSet) func() (start, end *float64) {
	startSec := fs.Float64("start", 0, "start time (seconds since epoch; omit for bag start)")
	endSec := fs.Float64("end", 0, "end time (seconds since epoch; omit for bag end)")
	return func() (start, end *float64) {
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "start":
				start = startSec
			case "end":
				end = endSec
			}
		})
		return start, end
	}
}

// buildPool returns the pool the build should route opens and stale
// removals through: the shared -pool one when the global flag is set.
func buildPool(b *core.BORA) *pool.Pool {
	if !usePool {
		return nil
	}
	poolOnce.Do(func() { sharedPool = pool.New(b, pool.Options{}) })
	return sharedPool
}

// cmdBuild materializes a declarative dataset build spec: a DAG of
// derivations over source bags, content-addressed so an unchanged
// derivation is a no-op.
func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	backend := backendFlag(fs)
	specPath := fs.String("f", "dataset.json", "build spec file (JSON derivation DAG)")
	workers := fs.Int("workers", 0, "concurrent derivations (0 = GOMAXPROCS)")
	quiet := fs.Bool("q", false, "suppress per-derivation output")
	fs.Parse(args)
	data, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	g, err := build.ParseSpec(data)
	if err != nil {
		return err
	}
	b, err := openBackend(*backend)
	if err != nil {
		return err
	}
	bld := build.New(b, build.Options{Pool: buildPool(b), Workers: *workers})
	start := time.Now()
	results, buildErr := bld.Build(g)
	var rebuilt, cached, failed int
	var bytes int64
	for _, r := range results {
		switch {
		case r.Err != nil:
			failed++
			fmt.Printf("failed   %-24s %v\n", r.Name, r.Err)
		case r.Rebuilt:
			rebuilt++
			bytes += r.Bytes
			if !*quiet {
				fmt.Printf("rebuilt  %-24s %d messages, %d bytes  addr %.12s\n", r.Name, r.Messages, r.Bytes, r.Address)
			}
		default:
			cached++
			if !*quiet {
				fmt.Printf("cached   %-24s addr %.12s\n", r.Name, r.Address)
			}
		}
	}
	fmt.Printf("built %d derivations: %d rebuilt, %d cached, %d failed (%d bytes materialized in %v)\n",
		len(results), rebuilt, cached, failed, bytes, time.Since(start))
	return buildErr
}

// cmdRebag filters a BORA bag into a new logical bag — the one-shot,
// un-addressed form of a build derivation, sharing its TransformSpec
// selection (topics, inclusive window, stride).
func cmdRebag(args []string) error {
	fs := flag.NewFlagSet("rebag", flag.ExitOnError)
	backend := backendFlag(fs)
	name := fs.String("name", "", "source logical bag name (required)")
	out := fs.String("out", "", "destination logical bag name (required)")
	topicsArg := fs.String("topics", "", "comma-separated topics to keep (empty = all)")
	window := windowFlags(fs)
	stride := fs.Int("stride", 0, "keep every Nth message per topic (0 or 1 = all)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("rebag: -out is required")
	}
	b, err := openBackend(*backend)
	if err != nil {
		return err
	}
	bag, err := openBag(b, *name)
	if err != nil {
		return err
	}
	ts := core.TransformSpec{Stride: *stride}
	if *topicsArg != "" {
		ts.Topics = strings.Split(*topicsArg, ",")
	}
	ts.StartSec, ts.EndSec = window()
	spec, err := ts.QuerySpec()
	if err != nil {
		return fmt.Errorf("rebag: %w", err)
	}
	sub, kept, err := b.Rebag(bag, *out, spec)
	if err != nil {
		return err
	}
	fmt.Printf("rebagged %s -> %s: kept %d messages across topics %v\n",
		*name, *out, kept, sub.Topics())
	return nil
}
