// trace-merge stitches the Chrome trace JSON files of several processes
// — typically a borabag -trace client run and the borad daemon's -trace
// output — into one timeline keyed on shared query ids.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/obs"
)

func cmdTraceMerge(args []string) error {
	fs := flag.NewFlagSet("trace-merge", flag.ExitOnError)
	out := fs.String("o", "merged-trace.json", "merged Chrome trace output path")
	align := fs.Bool("align", true, "shift timelines so spans sharing a query id coincide")
	names := fs.String("names", "", "comma-separated process names (default: file base names)")
	fs.Parse(args)
	if fs.NArg() < 2 {
		return fmt.Errorf("trace-merge: at least two trace files required")
	}
	var labels []string
	if *names != "" {
		labels = strings.Split(*names, ",")
		if len(labels) != fs.NArg() {
			return fmt.Errorf("trace-merge: -names lists %d names for %d files", len(labels), fs.NArg())
		}
	}
	inputs := make([]obs.TraceInput, fs.NArg())
	for i, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		if labels != nil {
			name = labels[i]
		}
		inputs[i] = obs.TraceInput{Name: name, Data: data}
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := obs.MergeChromeTraces(f, inputs, *align); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("merged %d traces -> %s\n", len(inputs), *out)
	return nil
}
