// Command borabag is a rosbag-like CLI over the BORA middleware.
//
// Usage:
//
//	borabag [global flags] record -o out.bag -seconds 5 [-scale 1000]
//	borabag [global flags] record -backend DIR -name bag1 [-live [-segment-window 1m]]
//	borabag -remote ADDR record -name bag1 [-live]
//	borabag [global flags] info file.bag
//	borabag [global flags] duplicate -backend DIR -name bag1 file.bag
//	borabag [global flags] ls -backend DIR
//	borabag [global flags] topics -backend DIR -name bag1
//	borabag [global flags] query -backend DIR -name bag1 -topics /imu,/tf [-start S -end S]
//	borabag -remote ADDR query -name bag1 -follow
//	borabag [global flags] export -backend DIR -name bag1 -o out.bag
//	borabag [global flags] build -backend DIR -f dataset.json [-workers N]
//
// Global flags precede the subcommand:
//
//	-metrics          print an observability snapshot (per-op counts,
//	                  bytes and latency histograms from internal/obs) to
//	                  stderr after the subcommand finishes
//	-metrics-out FILE write the snapshot as JSON to FILE instead
//	-trace FILE       record span begin/end events and write them to FILE
//	                  as Chrome trace-event JSON (load in chrome://tracing
//	                  or Perfetto)
//	-pool             serve bag opens through a shared handle pool
//	                  (internal/pool: cached opens, block cache) and print
//	                  its hit/miss/eviction stats to stderr afterwards
//	-remote ADDR      run query/topics/record against a borad daemon at ADDR
//	                  over the wire protocol instead of opening -backend
//	                  locally
//
// The flags compose: each independently enables the shared registry, so
// e.g. -trace alone collects metrics too (they are simply not printed),
// and -metrics -trace FILE prints the snapshot and writes the trace.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/rosbag"
	"repro/internal/workload"
)

// metricsReg is non-nil when any global observability flag is set
// (-metrics, -metrics-out, -trace); every subcommand threads it into the
// stack it drives. Nil keeps the whole obs layer inert.
var metricsReg *obs.Registry

// usePool routes every bag open of the invocation through one shared
// handle pool (global -pool flag); sharedPool is built lazily on the
// first open so it wraps the backend the subcommand actually uses.
var (
	usePool    bool
	sharedPool *pool.Pool
	poolOnce   sync.Once
)

// openBag opens a logical bag for a subcommand: through the shared
// pool when -pool is set, cold otherwise.
func openBag(b *core.BORA, name string) (*core.Bag, error) {
	if !usePool {
		return b.Open(name)
	}
	poolOnce.Do(func() { sharedPool = pool.New(b, pool.Options{}) })
	return sharedPool.Acquire(name)
}

// printPoolStats reports the shared pool's counters to stderr.
func printPoolStats() {
	if sharedPool == nil {
		return
	}
	s := sharedPool.Stats()
	fmt.Fprintln(os.Stderr)
	fmt.Fprintln(os.Stderr, "== pool stats ==")
	fmt.Fprintf(os.Stderr, "handles: %d resident, %d hits, %d misses, %d evictions, %d invalidations\n",
		s.HandlesResident, s.HandleHits, s.HandleMisses, s.HandleEvictions, s.HandleInvalidations)
	fmt.Fprintf(os.Stderr, "blocks:  %d resident (%d bytes), %d hits (%d bytes), %d misses, %d evictions\n",
		s.Block.Blocks, s.Block.Resident, s.Block.Hits, s.Block.HitBytes, s.Block.Misses, s.Block.Evictions)
}

func main() {
	args := os.Args[1:]
	// Global flags precede the subcommand.
	var (
		printMetrics bool
		metricsOut   string
		traceOut     string
		tracer       *obs.Tracer
	)
	ensureReg := func() {
		if metricsReg == nil {
			metricsReg = obs.NewRegistry()
		}
	}
globalFlags:
	for len(args) > 0 {
		switch {
		case args[0] == "-metrics":
			printMetrics = true
			ensureReg()
			args = args[1:]
		case args[0] == "-metrics-out" && len(args) > 1:
			metricsOut = args[1]
			ensureReg()
			args = args[2:]
		case args[0] == "-trace" && len(args) > 1:
			traceOut = args[1]
			ensureReg()
			tracer = obs.NewTracer(0)
			metricsReg.AttachTracer(tracer)
			args = args[2:]
		case args[0] == "-pool":
			usePool = true
			args = args[1:]
		case args[0] == "-remote" && len(args) > 1:
			remoteAddr = args[1]
			args = args[2:]
		default:
			break globalFlags
		}
	}
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	var err error
	switch args[0] {
	case "record":
		err = cmdRecord(args[1:])
	case "info":
		err = cmdInfo(args[1:])
	case "duplicate":
		err = cmdDuplicate(args[1:])
	case "ls":
		err = cmdLs(args[1:])
	case "topics":
		err = cmdTopics(args[1:])
	case "query":
		err = cmdQuery(args[1:])
	case "export":
		err = cmdExport(args[1:])
	case "reindex":
		err = cmdReindex(args[1:])
	case "rebag":
		err = cmdRebag(args[1:])
	case "build":
		err = cmdBuild(args[1:])
	case "fsck":
		err = cmdFsck(args[1:])
	case "verify":
		err = cmdVerify(args[1:])
	case "baginfo":
		err = cmdBagInfo(args[1:])
	case "play":
		err = cmdPlay(args[1:])
	case "trace-merge":
		err = cmdTraceMerge(args[1:])
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if usePool {
		printPoolStats()
	}
	if printMetrics {
		fmt.Fprintln(os.Stderr)
		fmt.Fprintln(os.Stderr, "== obs snapshot ==")
		metricsReg.Snapshot().WriteText(os.Stderr)
	}
	if metricsOut != "" {
		if werr := writeSnapshotFile(metricsOut, metricsReg); werr != nil && err == nil {
			err = werr
		}
	}
	if traceOut != "" {
		if werr := writeTraceFile(traceOut, tracer); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "borabag:", err)
		os.Exit(1)
	}
}

// writeSnapshotFile dumps the registry snapshot as JSON to path.
func writeSnapshotFile(path string, reg *obs.Registry) error {
	data, err := reg.Snapshot().JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// writeTraceFile dumps the recorded spans as Chrome trace-event JSON to
// path.
func writeTraceFile(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: borabag [-metrics] [-metrics-out FILE] [-trace FILE] [-pool] [-remote ADDR] <command> [flags]

commands:
  record     synthesize a Handheld-SLAM-like recording (Table II mix) into a
             .bag file, a BORA container (-backend -name, -live for the
             segmented live layout), or a daemon (-remote, via RECORD upload)
  info       print a bag file summary (rosbag info)
  duplicate  re-organize a bag into a BORA container (Fig 6)
  ls         list bags on a BORA back end
  topics     list topics of a BORA bag
  query      read messages by topics and optional time range (Figs 7-8)
  export     reconstruct a standard .bag from a container
  reindex    salvage a damaged or unclosed bag (rosbag reindex)
  rebag      filter a BORA bag into a new logical bag
  build      materialize a dataset build spec (-f dataset.json): a DAG of
             content-addressed derivations; unchanged ones are no-ops
  verify     check a BORA bag's container integrity (CRC + index)
  fsck       check a container for crash damage and optionally repair it
  baginfo    summarize a BORA bag (rosbag info over the container)
  play       replay a bag's messages in timestamp order (rosbag play)
  trace-merge  stitch client and server Chrome traces into one timeline
`)
}

func backendFlag(fs *flag.FlagSet) *string {
	return fs.String("backend", "", "BORA back-end directory (required)")
}

func openBackend(dir string) (*core.BORA, error) {
	if dir == "" {
		return nil, fmt.Errorf("-backend is required")
	}
	return core.New(dir, core.Options{Obs: metricsReg})
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("o", "out.bag", "output bag path (file mode)")
	backend := fs.String("backend", "", "record into a BORA back end instead of a file")
	name := fs.String("name", "", "logical bag name (container and remote modes)")
	live := fs.Bool("live", false, "record the live segmented layout (tail with query -follow)")
	window := fs.Duration("segment-window", 0, "live segment rotation window (0 = default)")
	seconds := fs.Int("seconds", 5, "seconds of recording to synthesize")
	scale := fs.Int("scale", 1000, "image payload scale-down divisor (1 = paper sizes)")
	seed := fs.Int64("seed", 1, "payload random seed")
	fs.Parse(args)
	opts := workload.SyntheticOptions{Seconds: *seconds, ScaleDown: *scale, Seed: *seed}

	// Remote mode: upload over the wire through client.Record.
	if remoteAddr != "" {
		if *name == "" {
			return fmt.Errorf("record: -name is required with -remote")
		}
		return remoteRecord(*name, *live, *window, opts)
	}

	// Container mode: record straight into a BORA back end — the live
	// layout when -live (queryable mid-recording via Follow), a classic
	// single-container bag otherwise.
	if *backend != "" {
		if *name == "" {
			return fmt.Errorf("record: -name is required with -backend")
		}
		b, err := openBackend(*backend)
		if err != nil {
			return err
		}
		var rec *core.Recorder
		if *live {
			rec, err = b.CreateLiveBag(*name, *window)
		} else {
			rec, err = b.CreateBag(*name)
		}
		if err != nil {
			return err
		}
		start := time.Now()
		n, err := workload.RecordHandheldSLAM(rec, opts)
		if err != nil {
			return err
		}
		if err := rec.Seal(); err != nil {
			return err
		}
		layout := "classic"
		if *live {
			layout = "live"
		}
		fmt.Printf("recorded %s/%s (%s layout): %d messages, %d synthetic seconds in %v\n",
			*backend, *name, layout, n, *seconds, time.Since(start))
		return nil
	}

	// File mode: the original synthetic .bag writer.
	n, err := workload.WriteHandheldSLAMBag(*out, opts)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d messages, %d seconds of the Table II topic mix\n", *out, n, *seconds)
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("info: exactly one bag path required")
	}
	start := time.Now()
	r, f, err := rosbag.OpenObs(fs.Arg(0), metricsReg)
	if err != nil {
		return err
	}
	defer f.Close()
	openTime := time.Since(start)
	fmt.Print(r.Info())
	fmt.Printf("open:     %v (traversed %d chunk infos)\n", openTime, r.Stats().ChunkInfosScanned)
	return nil
}

func cmdDuplicate(args []string) error {
	fs := flag.NewFlagSet("duplicate", flag.ExitOnError)
	backend := backendFlag(fs)
	name := fs.String("name", "", "logical bag name (default: file base name)")
	window := fs.Duration("window", time.Second, "coarse time-index window")
	workers := fs.Int("workers", 0, "organizer worker count (0 = auto)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("duplicate: exactly one bag path required")
	}
	src := fs.Arg(0)
	if *name == "" {
		base := src
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		*name = strings.TrimSuffix(base, ".bag")
	}
	b, err := core.New(*backend, core.Options{TimeWindow: *window, Workers: *workers, Obs: metricsReg})
	if err != nil {
		return err
	}
	start := time.Now()
	_, stats, err := b.Duplicate(src, *name)
	if err != nil {
		return err
	}
	fmt.Printf("duplicated %s -> %s/%s: %d messages, %d topics, %d bytes in %v\n",
		src, *backend, *name, stats.Messages, stats.Topics, stats.Bytes, time.Since(start))
	return nil
}

func cmdLs(args []string) error {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	backend := backendFlag(fs)
	fs.Parse(args)
	b, err := openBackend(*backend)
	if err != nil {
		return err
	}
	names, err := b.List()
	if err != nil {
		return err
	}
	for _, n := range names {
		fmt.Println(n)
	}
	return nil
}

func cmdTopics(args []string) error {
	fs := flag.NewFlagSet("topics", flag.ExitOnError)
	backend := backendFlag(fs)
	name := fs.String("name", "", "logical bag name (required)")
	fs.Parse(args)
	if remoteAddr != "" {
		return remoteTopics(*name)
	}
	b, err := openBackend(*backend)
	if err != nil {
		return err
	}
	bag, err := openBag(b, *name)
	if err != nil {
		return err
	}
	conns, err := bag.Connections()
	if err != nil {
		return err
	}
	for _, c := range conns {
		n, err := bag.MessageCount(c.Topic)
		if err != nil {
			return err
		}
		fmt.Printf("%-32s %8d msgs  %s\n", c.Topic, n, c.Type)
	}
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	backend := backendFlag(fs)
	name := fs.String("name", "", "logical bag name (required)")
	topicsArg := fs.String("topics", "", "comma-separated topic names (empty = all)")
	window := windowFlags(fs)
	parallel := fs.Int("parallel", 0, "read topic streams concurrently with this many workers (0 = serial, -1 = GOMAXPROCS)")
	chrono := fs.Bool("chrono", false, "deliver messages in global timestamp order (serial)")
	follow := fs.Bool("follow", false, "tail a recording bag: stream the sealed prefix, then live messages until sealed or interrupted")
	quiet := fs.Bool("q", false, "suppress per-message output")
	fs.Parse(args)
	if *follow && *parallel != 0 {
		return fmt.Errorf("query: -follow streams serially; drop -parallel")
	}
	startSec, endSec := window()
	if remoteAddr != "" {
		if *parallel != 0 {
			return fmt.Errorf("query: -parallel is not supported with -remote (the daemon streams serially per query)")
		}
		var topics []string
		if *topicsArg != "" {
			topics = strings.Split(*topicsArg, ",")
		}
		var remoteStart, remoteEnd float64
		if startSec != nil {
			remoteStart = *startSec
		}
		if endSec != nil {
			remoteEnd = *endSec
		}
		return remoteQuery(*name, topics, remoteStart, remoteEnd, *chrono, *follow, *quiet)
	}
	b, err := openBackend(*backend)
	if err != nil {
		return err
	}
	openStart := time.Now()
	bag, err := openBag(b, *name)
	if err != nil {
		return err
	}
	openTime := time.Since(openStart)
	var topics []string
	if *topicsArg != "" {
		topics = strings.Split(*topicsArg, ",")
	}
	var mu sync.Mutex
	var count int
	var bytes int64
	emit := func(m core.MessageRef) error {
		mu.Lock() // parallel queries deliver from several goroutines
		count++
		bytes += int64(len(m.Data))
		if !*quiet {
			fmt.Printf("%s %-32s %d bytes\n", m.Time, m.Conn.Topic, len(m.Data))
		}
		mu.Unlock()
		return nil
	}
	queryStart := time.Now()
	// The window flows through TransformSpec so an explicit -end 0 is an
	// epoch bound rather than silently reading as "no bound".
	ts := core.TransformSpec{StartSec: startSec, EndSec: endSec}
	spec, err := ts.QuerySpec()
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}
	spec.Topics = topics
	spec.Workers = *parallel
	if *chrono {
		spec.Order = core.OrderTime
	}
	spec.Follow = *follow
	// A follow of a still-recording bag has no natural end; ^C bounds it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := bag.QueryContext(ctx, spec, emit); err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	fmt.Printf("open %v, query %v: %d messages, %d bytes (windows scanned: %d)\n",
		openTime, time.Since(queryStart), count, bytes, bag.Stats().WindowsScanned)
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	backend := backendFlag(fs)
	name := fs.String("name", "", "logical bag name (required)")
	out := fs.String("o", "export.bag", "output bag path")
	fs.Parse(args)
	b, err := openBackend(*backend)
	if err != nil {
		return err
	}
	bag, err := openBag(b, *name)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := bag.Export(f, rosbag.WriterOptions{}); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("exported %s/%s -> %s\n", *backend, *name, *out)
	return nil
}
