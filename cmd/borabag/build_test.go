package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestWindowFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	window := windowFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if start, end := window(); start != nil || end != nil {
		t.Errorf("unset flags resolved to %v, %v", start, end)
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	window = windowFlags(fs)
	if err := fs.Parse([]string{"-start", "0", "-end", "3.5"}); err != nil {
		t.Fatal(err)
	}
	start, end := window()
	if start == nil || *start != 0 {
		t.Errorf("explicit -start 0 resolved to %v", start)
	}
	if end == nil || *end != 3.5 {
		t.Errorf("-end 3.5 resolved to %v", end)
	}
}

// TestRebagExplicitZeroEnd is the regression for the old value-based
// flag guards: an explicit `-end 0` must mean "up to the epoch" (which
// keeps nothing of a modern recording), not silently read as unset.
func TestRebagExplicitZeroEnd(t *testing.T) {
	dir := chdirTemp(t)
	backend := filepath.Join(dir, "backend")
	if err := cmdRecord([]string{"-o", "r.bag", "-seconds", "1", "-scale", "4000"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDuplicate([]string{"-backend", backend, "r.bag"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRebag([]string{"-backend", backend, "-name", "r", "-out", "none", "-end", "0"}); err != nil {
		t.Fatalf("rebag -end 0: %v", err)
	}
	b, err := openBackend(backend)
	if err != nil {
		t.Fatal(err)
	}
	empty, err := b.Open("none")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := empty.MessageCount(); err != nil || n != 0 {
		t.Errorf("rebag -end 0 kept %d messages (err %v), want 0", n, err)
	}
	// Unset -end still means "to the bag's end".
	if err := cmdRebag([]string{"-backend", backend, "-name", "r", "-out", "all", "-topics", "/imu", "-stride", "2"}); err != nil {
		t.Fatalf("rebag: %v", err)
	}
	full, err := b.Open("r")
	if err != nil {
		t.Fatal(err)
	}
	imu, err := full.MessageCount("/imu")
	if err != nil {
		t.Fatal(err)
	}
	half, err := b.Open("all")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := half.MessageCount(); err != nil || n != (imu+1)/2 {
		t.Errorf("rebag -stride 2 kept %d of %d /imu messages (err %v)", n, imu, err)
	}
}

func TestBuildCommand(t *testing.T) {
	dir := chdirTemp(t)
	backend := filepath.Join(dir, "backend")
	if err := cmdRecord([]string{"-o", "s.bag", "-seconds", "1", "-scale", "4000"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDuplicate([]string{"-backend", backend, "-name", "src", "s.bag"}); err != nil {
		t.Fatal(err)
	}
	spec := `{
		"derivations": [
			{"name": "imu", "from": "src", "topics": ["/imu"]},
			{"name": "imu-half", "from": "imu", "stride": 2}
		]
	}`
	if err := os.WriteFile("dataset.json", []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{"-backend", backend, "-f", "dataset.json"}); err != nil {
		t.Fatalf("cold build: %v", err)
	}
	// Second run is a pure cache hit and must leave outputs openable.
	if err := cmdBuild([]string{"-backend", backend, "-f", "dataset.json", "-q"}); err != nil {
		t.Fatalf("no-op build: %v", err)
	}
	b, err := openBackend(backend)
	if err != nil {
		t.Fatal(err)
	}
	imu, err := b.Open("imu")
	if err != nil {
		t.Fatal(err)
	}
	n, err := imu.MessageCount()
	if err != nil || n == 0 {
		t.Fatalf("derived imu bag has %d messages (err %v)", n, err)
	}
	half, err := b.Open("imu-half")
	if err != nil {
		t.Fatal(err)
	}
	if hn, err := half.MessageCount(); err != nil || hn != (n+1)/2 {
		t.Errorf("imu-half has %d messages of %d (err %v)", hn, n, err)
	}

	if err := cmdBuild([]string{"-backend", backend, "-f", "missing.json"}); err == nil {
		t.Error("build with missing spec accepted")
	}
	if err := os.WriteFile("cycle.json", []byte(`{"derivations": [{"name": "a", "from": "a"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{"-backend", backend, "-f", "cycle.json"}); err == nil {
		t.Error("cyclic spec accepted")
	}
}
