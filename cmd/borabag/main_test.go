package main

import (
	"os"
	"path/filepath"
	"testing"
)

// chdirTemp moves the test into a temp directory so relative output
// paths stay contained.
func chdirTemp(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
	return dir
}

func TestRecordInfoDuplicateQueryExport(t *testing.T) {
	dir := chdirTemp(t)
	backend := filepath.Join(dir, "backend")

	if err := cmdRecord([]string{"-o", "demo.bag", "-seconds", "1", "-scale", "4000"}); err != nil {
		t.Fatalf("record: %v", err)
	}
	if err := cmdInfo([]string{"demo.bag"}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if err := cmdDuplicate([]string{"-backend", backend, "demo.bag"}); err != nil {
		t.Fatalf("duplicate: %v", err)
	}
	if err := cmdLs([]string{"-backend", backend}); err != nil {
		t.Fatalf("ls: %v", err)
	}
	if err := cmdTopics([]string{"-backend", backend, "-name", "demo"}); err != nil {
		t.Fatalf("topics: %v", err)
	}
	if err := cmdQuery([]string{"-backend", backend, "-name", "demo", "-topics", "/imu", "-q"}); err != nil {
		t.Fatalf("query: %v", err)
	}
	if err := cmdQuery([]string{"-backend", backend, "-name", "demo", "-topics", "/imu", "-q",
		"-start", "1500000000", "-end", "1500000000.5"}); err != nil {
		t.Fatalf("time query: %v", err)
	}
	if err := cmdExport([]string{"-backend", backend, "-name", "demo", "-o", "out.bag"}); err != nil {
		t.Fatalf("export: %v", err)
	}
	if err := cmdInfo([]string{"out.bag"}); err != nil {
		t.Fatalf("info on export: %v", err)
	}
	if err := cmdRebag([]string{"-backend", backend, "-name", "demo", "-out", "sub", "-topics", "/tf"}); err != nil {
		t.Fatalf("rebag: %v", err)
	}
	if err := cmdQuery([]string{"-backend", backend, "-name", "sub", "-q"}); err != nil {
		t.Fatalf("query rebagged: %v", err)
	}
}

func TestReindexCommand(t *testing.T) {
	chdirTemp(t)
	if err := cmdRecord([]string{"-o", "full.bag", "-seconds", "1", "-scale", "4000"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile("full.bag")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("broken.bag", raw[:len(raw)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdReindex([]string{"-o", "fixed.bag", "broken.bag"}); err != nil {
		t.Fatalf("reindex: %v", err)
	}
	if err := cmdInfo([]string{"fixed.bag"}); err != nil {
		t.Fatalf("info on reindexed: %v", err)
	}
}

func TestCommandValidation(t *testing.T) {
	chdirTemp(t)
	if err := cmdInfo([]string{}); err == nil {
		t.Error("info with no args accepted")
	}
	if err := cmdInfo([]string{"missing.bag"}); err == nil {
		t.Error("info on missing file accepted")
	}
	if err := cmdDuplicate([]string{"-backend", "b"}); err == nil {
		t.Error("duplicate with no source accepted")
	}
	if err := cmdLs([]string{}); err == nil {
		t.Error("ls without backend accepted")
	}
	if err := cmdQuery([]string{"-backend", t.TempDir(), "-name", "missing"}); err == nil {
		t.Error("query on missing bag accepted")
	}
	if err := cmdRebag([]string{"-backend", t.TempDir(), "-name", "x"}); err == nil {
		t.Error("rebag without -out accepted")
	}
	if err := cmdReindex([]string{}); err == nil {
		t.Error("reindex with no args accepted")
	}
}

func TestVerifyCommand(t *testing.T) {
	dir := chdirTemp(t)
	backend := filepath.Join(dir, "backend")
	if err := cmdRecord([]string{"-o", "v.bag", "-seconds", "1", "-scale", "4000"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDuplicate([]string{"-backend", backend, "v.bag"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-backend", backend, "-name", "v"}); err != nil {
		t.Fatalf("verify on clean bag: %v", err)
	}
	// Corrupt one data file, verification must fail.
	matches, err := filepath.Glob(filepath.Join(backend, "v", "*", "data"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no data files found: %v", err)
	}
	buf, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xFF
	if err := os.WriteFile(matches[0], buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-backend", backend, "-name", "v"}); err == nil {
		t.Error("verify passed on corrupted container")
	}
}

func TestBagInfoAndPlayCommands(t *testing.T) {
	dir := chdirTemp(t)
	backend := filepath.Join(dir, "backend")
	if err := cmdRecord([]string{"-o", "p.bag", "-seconds", "1", "-scale", "4000"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDuplicate([]string{"-backend", backend, "p.bag"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBagInfo([]string{"-backend", backend, "-name", "p"}); err != nil {
		t.Fatalf("baginfo: %v", err)
	}
	if err := cmdPlay([]string{"-q", "-instant", "p.bag"}); err != nil {
		t.Fatalf("play: %v", err)
	}
	if err := cmdPlay([]string{"missing.bag"}); err == nil {
		t.Error("play on missing bag accepted")
	}
	if err := cmdBagInfo([]string{"-backend", backend, "-name", "missing"}); err == nil {
		t.Error("baginfo on missing bag accepted")
	}
}
