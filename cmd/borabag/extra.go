package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/replay"
	"repro/internal/rosbag"
)

// cmdReindex salvages a damaged/unclosed bag into a fresh indexed one.
func cmdReindex(args []string) error {
	fs := flag.NewFlagSet("reindex", flag.ExitOnError)
	out := fs.String("o", "reindexed.bag", "output bag path")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("reindex: exactly one bag path required")
	}
	in, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer in.Close()
	st, err := in.Stat()
	if err != nil {
		return err
	}
	of, err := os.Create(*out)
	if err != nil {
		return err
	}
	stats, err := rosbag.Reindex(in, st.Size(), of, rosbag.WriterOptions{})
	if err != nil {
		of.Close()
		return err
	}
	if err := of.Close(); err != nil {
		return err
	}
	status := "clean"
	if stats.Truncated {
		status = "truncated tail discarded"
	}
	fmt.Printf("salvaged %d messages on %d connections from %d chunks (%s) -> %s\n",
		stats.Messages, stats.Connections, stats.Chunks, status, *out)
	return nil
}

// cmdVerify checks a BORA bag's container integrity (CRC + index tiling).
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	backend := backendFlag(fs)
	name := fs.String("name", "", "logical bag name (required)")
	fs.Parse(args)
	b, err := openBackend(*backend)
	if err != nil {
		return err
	}
	bag, err := openBag(b, *name)
	if err != nil {
		return err
	}
	results, verr := bag.Container().Verify()
	for _, r := range results {
		status := "OK"
		if !r.OK {
			status = "FAIL"
		}
		fmt.Printf("%-4s %-32s %8d msgs %12d bytes  %s\n", status, r.Topic, r.Messages, r.Bytes, r.Detail)
	}
	return verr
}

// cmdBagInfo prints the container-level summary of a BORA bag (the
// borabag analogue of `rosbag info`, without touching message data).
func cmdBagInfo(args []string) error {
	fs := flag.NewFlagSet("baginfo", flag.ExitOnError)
	backend := backendFlag(fs)
	name := fs.String("name", "", "logical bag name (required)")
	fs.Parse(args)
	b, err := openBackend(*backend)
	if err != nil {
		return err
	}
	bag, err := openBag(b, *name)
	if err != nil {
		return err
	}
	info, err := bag.Info()
	if err != nil {
		return err
	}
	fmt.Print(info)
	return nil
}

// cmdPlay replays a bag's messages into a logging computation graph —
// `rosbag play` with a console sink.
func cmdPlay(args []string) error {
	fs := flag.NewFlagSet("play", flag.ExitOnError)
	rate := fs.Float64("rate", 1, "playback speed multiplier")
	quiet := fs.Bool("q", false, "suppress per-message output")
	instant := fs.Bool("instant", false, "skip pacing (report virtual duration)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("play: exactly one bag path required")
	}
	r, f, err := rosbag.OpenObs(fs.Arg(0), metricsReg)
	if err != nil {
		return err
	}
	defer f.Close()

	g := graph.New()
	sink, err := g.NewNode("console")
	if err != nil {
		return err
	}
	var printed atomic.Int64
	for topic := range topicsOf(r) {
		if _, err := sink.Subscribe(topic, 256, func(m graph.Message) {
			printed.Add(1) // subscriber callbacks run on per-topic goroutines
			if !*quiet {
				fmt.Printf("%s %-32s %d bytes\n", m.Time, m.Topic, len(m.Data))
			}
		}); err != nil {
			return err
		}
	}
	opts := replay.Options{Rate: *rate}
	var fast *replay.FastClock
	if *instant {
		fast = &replay.FastClock{}
		opts.Clock = fast
	}
	stats, err := replay.Play(g, "player", replay.FromReader(r, nil), opts)
	if err != nil {
		return err
	}
	g.Shutdown()
	fmt.Printf("replayed %d messages across %d topics (recorded span %v)\n",
		stats.Messages, stats.Topics, stats.BagDuration)
	if fast != nil {
		fmt.Printf("virtual pacing at rate %.1f would have taken %v\n", *rate, fast.Elapsed)
	}
	return nil
}

func topicsOf(r *rosbag.Reader) map[string]bool {
	out := map[string]bool{}
	for _, t := range r.Topics() {
		out[t] = true
	}
	return out
}

// cmdFsck checks one container's on-disk consistency and optionally
// repairs it (borabag's fsck: detect torn writes, truncated indexes and
// stale metadata left by a crash, then truncate back to the last
// consistent state).
func cmdFsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	backend := backendFlag(fs)
	name := fs.String("name", "", "logical bag name (required)")
	repair := fs.Bool("repair", false, "repair the container in place after checking")
	quiet := fs.Bool("q", false, "suppress per-finding output")
	fs.Parse(args)
	if *backend == "" || *name == "" {
		return fmt.Errorf("fsck: -backend and -name are required")
	}
	root := filepath.Join(*backend, *name)
	if _, err := os.Stat(root); err != nil {
		return fmt.Errorf("fsck: %w", err)
	}
	if _, err := os.Stat(filepath.Join(root, core.LiveMetaFileName)); err == nil {
		return fsckLive(*backend, *name, root, *repair, *quiet)
	}

	sp := metricsReg.Op("fsck.scan").Start()
	rep, err := container.Fsck(root)
	if err != nil {
		sp.EndErr(err)
		return fmt.Errorf("fsck: %w", err)
	}
	sp.End()
	metricsReg.Counter("fsck.findings").Add(int64(len(rep.Findings)))
	printFindings := func(rep *container.Report) {
		if *quiet {
			return
		}
		for _, f := range rep.Findings {
			loc := f.Topic
			if loc == "" {
				loc = f.Path
			}
			fmt.Printf("%-22s %-32s %s\n", f.Kind, loc, f.Detail)
		}
	}
	printFindings(rep)
	if rep.Clean() {
		fmt.Printf("%s: clean (%d topics)\n", root, rep.Topics)
		return nil
	}
	fmt.Printf("%s: %d findings across %d topics\n", root, len(rep.Findings), rep.Topics)
	if !*repair {
		return fmt.Errorf("fsck: container is damaged (re-run with -repair to fix)")
	}

	rsp := metricsReg.Op("fsck.repair").Start()
	after, err := container.Repair(root)
	if err != nil {
		rsp.EndErr(err)
		return fmt.Errorf("fsck: repair: %w", err)
	}
	rsp.End()
	metricsReg.Counter("fsck.repaired").Add(1)
	if !after.Clean() {
		printFindings(after)
		return fmt.Errorf("fsck: container still damaged after repair (%d findings)", len(after.Findings))
	}
	fmt.Printf("%s: repaired, now clean (%d topics)\n", root, after.Topics)
	return nil
}

// fsckLive is cmdFsck over the live segmented layout: every seg-*
// container is checked, and a bag abandoned mid-recording (a crashed
// recorder left state=recording) is reported as damaged. -repair routes
// through core.RepairLive, which truncates each segment to its
// consistent indexed prefix and flips the live meta to complete.
func fsckLive(backend, name, root string, repair, quiet bool) error {
	segs, err := liveSegments(root)
	if err != nil {
		return fmt.Errorf("fsck: %w", err)
	}
	b, err := openBackend(backend)
	if err != nil {
		return err
	}
	scan := func() (findings int, ferr error) {
		for _, seg := range segs {
			rep, err := container.Fsck(seg)
			if err != nil {
				return 0, fmt.Errorf("fsck: %s: %w", seg, err)
			}
			findings += len(rep.Findings)
			if quiet {
				continue
			}
			for _, f := range rep.Findings {
				loc := f.Topic
				if loc == "" {
					loc = f.Path
				}
				fmt.Printf("%-22s %s %-32s %s\n", f.Kind, filepath.Base(seg), loc, f.Detail)
			}
		}
		return findings, nil
	}
	findings, err := scan()
	if err != nil {
		return err
	}
	_, recording, err := b.ProbeBag(name)
	if err != nil {
		return fmt.Errorf("fsck: %w", err)
	}
	if b.LiveRecorder(name) != nil {
		// An in-process recorder can't happen from the CLI, but keep the
		// check honest for shared back ends.
		return fmt.Errorf("fsck: %s is recording in this process", name)
	}
	if recording && !quiet {
		fmt.Printf("%-22s %-32s recorder did not seal (crash or still recording elsewhere)\n", "live-unsealed", core.LiveMetaFileName)
	}
	if !recording && findings == 0 {
		fmt.Printf("%s: clean (live layout, %d segments)\n", root, len(segs))
		return nil
	}
	total := findings
	if recording {
		total++
	}
	fmt.Printf("%s: %d findings across %d segments (live layout)\n", root, total, len(segs))
	if !repair {
		return fmt.Errorf("fsck: live bag is damaged (re-run with -repair to fix)")
	}
	if err := b.RepairLive(name); err != nil {
		return fmt.Errorf("fsck: repair: %w", err)
	}
	// RepairLive may have dropped unrecoverable segments; re-list.
	if segs, err = liveSegments(root); err != nil {
		return fmt.Errorf("fsck: %w", err)
	}
	if findings, err = scan(); err != nil {
		return err
	}
	if findings > 0 {
		return fmt.Errorf("fsck: live bag still damaged after repair (%d findings)", findings)
	}
	fmt.Printf("%s: repaired, now sealed and clean (%d segments)\n", root, len(segs))
	return nil
}

// liveSegments lists root's seg-* directories in segment order.
func liveSegments(root string) ([]string, error) {
	ents, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, ent := range ents {
		if ent.IsDir() && strings.HasPrefix(ent.Name(), "seg-") {
			out = append(out, filepath.Join(root, ent.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}
