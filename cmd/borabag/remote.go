// Remote mode: with the global -remote ADDR flag, query, topics and
// record run against a borad daemon over the wire protocol instead of
// opening a back-end directory locally, so many CLI invocations share
// one daemon's handle pool and block cache — and a follow query can
// tail a recording another connection is still uploading.
package main

import (
	"fmt"
	"time"

	"repro/internal/bagio"
	"repro/internal/client"
	"repro/internal/workload"
)

// remoteAddr is the global -remote flag: when non-empty, subcommands
// that read bags (query, topics) talk to a borad daemon at this
// address instead of a local -backend directory.
var remoteAddr string

func dialRemote() (*client.Client, error) {
	// The shared registry (global -metrics/-trace flags) records the
	// client-side query spans; trace ids ride the wire either way.
	return client.Dial(remoteAddr, client.Options{Obs: metricsReg})
}

// remoteTopics is cmdTopics against a daemon.
func remoteTopics(name string) error {
	cl, err := dialRemote()
	if err != nil {
		return err
	}
	defer cl.Close()
	bi, err := cl.Info(name)
	if err != nil {
		return err
	}
	for _, t := range bi.Topics {
		fmt.Printf("%-32s %8d msgs  %s\n", t.Topic, t.Count, t.Type)
	}
	return nil
}

// remoteQuery is cmdQuery against a daemon: one streaming QUERY with
// the same topic/time/order selection, counting messages and bytes.
// With follow, the daemon streams the sealed prefix and then live
// messages until the recording seals (or the process is interrupted —
// closing the connection cancels the server-side stream).
func remoteQuery(name string, topics []string, startSec, endSec float64, chrono, follow, quiet bool) error {
	cl, err := dialRemote()
	if err != nil {
		return err
	}
	defer cl.Close()
	spec := client.QuerySpec{
		Topics: topics,
		Start:  bagio.TimeFromNanos(int64(startSec * 1e9)),
		Chrono: chrono,
		Follow: follow,
	}
	if endSec > 0 {
		spec.End = bagio.TimeFromNanos(int64(endSec * 1e9))
	}
	queryStart := time.Now()
	st, err := cl.Query(name, spec)
	if err != nil {
		return err
	}
	for st.Next() {
		if !quiet {
			m := st.Message()
			fmt.Printf("%s %-32s %d bytes\n", m.Time, m.Topic, len(m.Data))
		}
	}
	if err := st.Err(); err != nil {
		return err
	}
	count, bytes := st.Received()
	fmt.Printf("remote query %v: %d messages, %d bytes from %s (query id %016x)\n",
		time.Since(queryStart), count, bytes, remoteAddr, st.QueryID())
	return nil
}

// remoteRecord is cmdRecord against a daemon: the synthetic Table II
// stream uploaded through one RECORD stream, live or classic.
func remoteRecord(name string, live bool, window time.Duration, opts workload.SyntheticOptions) error {
	cl, err := dialRemote()
	if err != nil {
		return err
	}
	defer cl.Close()
	rs, err := cl.Record(name, client.RecordSpec{Live: live, WindowNanos: uint64(window)})
	if err != nil {
		return err
	}
	start := time.Now()
	n, err := workload.RecordHandheldSLAM(rs, opts)
	if err != nil {
		return err
	}
	if err := rs.Seal(); err != nil {
		return err
	}
	_, bytes := rs.Sent()
	layout := "classic"
	if live {
		layout = "live"
	}
	fmt.Printf("recorded %s on %s (%s layout): %d messages, %d payload bytes in %v\n",
		name, remoteAddr, layout, n, bytes, time.Since(start))
	return nil
}
