// Command borad is the BORA bag-serving daemon: it exposes a back-end
// directory of organized containers over the length-prefixed wire
// protocol (internal/server/wire), serving every open through a shared
// handle pool so concurrent clients reuse hot bag handles and block
// cache instead of paying a cold open per query.
//
// Usage:
//
//	borad -backend DIR [-listen ADDR] [-http ADDR] [-pool=false]
//	      [-max-queries N] [-drain DUR]
//
// Flags:
//
//	-backend DIR    BORA back-end directory to serve (required)
//	-listen ADDR    TCP listen address for the wire protocol (default :7712)
//	-http ADDR      optional HTTP sidecar: /metrics (obs snapshot JSON),
//	                /healthz (200 ok / 503 draining), /statz (server stats)
//	-pool           serve opens through a shared handle pool (default true;
//	                -pool=false cold-opens per query, the paper's baseline)
//	-max-queries N  concurrent query streams admitted across all
//	                connections before BUSY (default 64)
//	-drain DUR      graceful-drain deadline on SIGTERM/SIGINT (default 30s)
//
// On SIGTERM or SIGINT the daemon drains: listeners close, in-flight
// query streams run to completion (bounded by -drain), then it exits. A
// second signal aborts immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/server"
)

func main() {
	var (
		backend    = flag.String("backend", "", "BORA back-end directory (required)")
		listen     = flag.String("listen", ":7712", "TCP listen address for the wire protocol")
		httpAddr   = flag.String("http", "", "HTTP sidecar listen address (empty = disabled)")
		usePool    = flag.Bool("pool", true, "serve opens through a shared handle pool")
		maxQueries = flag.Int("max-queries", server.DefaultMaxQueries, "concurrent query streams before BUSY")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-drain deadline on SIGTERM/SIGINT")
	)
	flag.Parse()
	if err := run(*backend, *listen, *httpAddr, *usePool, *maxQueries, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "borad:", err)
		os.Exit(1)
	}
}

func run(backend, listen, httpAddr string, usePool bool, maxQueries int, drain time.Duration) error {
	if backend == "" {
		return fmt.Errorf("-backend is required")
	}
	reg := obs.NewRegistry()
	b, err := core.New(backend, core.Options{Obs: reg})
	if err != nil {
		return err
	}
	opts := server.Options{MaxQueries: maxQueries}
	if usePool {
		opts.Pool = pool.New(b, pool.Options{})
	}
	srv := server.New(b, opts)

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "borad: serving %s on %s (pool=%v, max-queries=%d)\n",
		backend, ln.Addr(), usePool, maxQueries)

	var hsrv *http.Server
	if httpAddr != "" {
		hln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			ln.Close()
			return err
		}
		fmt.Fprintf(os.Stderr, "borad: http sidecar on %s\n", hln.Addr())
		hsrv = &http.Server{Handler: srv.HTTPHandler()}
		go hsrv.Serve(hln)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "borad: %v: draining (deadline %v)\n", sig, drain)
	}
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "borad: second signal: aborting")
		cancel()
	}()
	err = srv.Shutdown(ctx)
	if hsrv != nil {
		hsrv.Close()
	}
	if err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "borad: drained")
	return nil
}
