// Command borad is the BORA bag-serving daemon: it exposes a back-end
// directory of organized containers over the length-prefixed wire
// protocol (internal/server/wire), serving every open through a shared
// handle pool so concurrent clients reuse hot bag handles and block
// cache instead of paying a cold open per query.
//
// Usage:
//
//	borad -backend DIR [-listen ADDR] [-http ADDR] [-pool=false]
//	      [-max-queries N] [-drain DUR] [-slow DUR] [-slowlog FILE]
//	      [-querylog N] [-trace FILE] [-pprof]
//	      [-cluster FILE -node NAME] [-hot-qps QPS]
//
// Flags:
//
//	-backend DIR    BORA back-end directory to serve (required)
//	-listen ADDR    TCP listen address for the wire protocol (default :7712)
//	-cluster FILE   membership file ("name addr" lines) naming every borad
//	                of the cluster; all of them must serve the same shared
//	                back end. The daemon only validates its own entry and
//	                logs the ring — placement lives client-side.
//	-node NAME      this daemon's member name in -cluster (required with it)
//	-hot-qps QPS    per-bag query rate past which a bag reads as hot:
//	                reported in /statz hot_bags and protected from handle
//	                eviction (default 8, negative disables)
//	-http ADDR      optional HTTP sidecar: /metrics (obs snapshot JSON),
//	                /healthz (200 ok / 503 draining), /statz (server
//	                stats), /slowqueries (the query log)
//	-pool           serve opens through a shared handle pool (default true;
//	                -pool=false cold-opens per query, the paper's baseline)
//	-max-queries N  concurrent query streams admitted across all
//	                connections before BUSY (default 64)
//	-drain DUR      graceful-drain deadline on SIGTERM/SIGINT (default 30s)
//	-slow DUR       slow-query threshold; queries at least this slow are
//	                marked slow and written to -slowlog (0 = disabled)
//	-slowlog FILE   append slow queries as JSON lines ("-" = stderr)
//	-querylog N     completed-query records kept in memory for
//	                /slowqueries (default 1024)
//	-trace FILE     record spans and write a Chrome trace JSON on exit;
//	                merge with a client's via "borabag trace-merge"
//	-pprof          mount net/http/pprof under /debug/pprof/ on -http
//
// On SIGTERM or SIGINT the daemon drains: listeners close, in-flight
// query streams run to completion (bounded by -drain), then it exits. A
// second signal aborts immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster/ring"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/server"
)

// validateCluster checks the -cluster/-node pairing early: the
// membership file must parse, build a ring, and contain this daemon.
// Placement itself lives client-side — the daemon just refuses to boot
// into a cluster that cannot agree on who it is.
func validateCluster(cfg config) error {
	if cfg.cluster == "" {
		if cfg.node != "" {
			return fmt.Errorf("-node %q given without -cluster", cfg.node)
		}
		return nil
	}
	if cfg.node == "" {
		return fmt.Errorf("-cluster requires -node (this daemon's member name)")
	}
	members, err := ring.LoadMembers(cfg.cluster)
	if err != nil {
		return fmt.Errorf("-cluster: %w", err)
	}
	r, err := ring.New(members, 0)
	if err != nil {
		return fmt.Errorf("-cluster: %w", err)
	}
	self, ok := ring.Find(members, cfg.node)
	if !ok {
		return fmt.Errorf("-node %q is not in %s", cfg.node, cfg.cluster)
	}
	fmt.Fprintf(os.Stderr, "borad: cluster member %s (%s), %d-node ring:\n", self.Name, self.Addr, r.Len())
	for _, m := range r.Members() {
		marker := " "
		if m.Name == self.Name {
			marker = "*"
		}
		fmt.Fprintf(os.Stderr, "borad:  %s %s %s\n", marker, m.Name, m.Addr)
	}
	return nil
}

// config collects borad's flag values.
type config struct {
	backend    string
	listen     string
	httpAddr   string
	usePool    bool
	maxQueries int
	drain      time.Duration
	slow       time.Duration
	slowlog    string
	querylog   int
	trace      string
	pprof      bool
	cluster    string
	node       string
	hotQPS     float64
}

func main() {
	var cfg config
	flag.StringVar(&cfg.backend, "backend", "", "BORA back-end directory (required)")
	flag.StringVar(&cfg.listen, "listen", ":7712", "TCP listen address for the wire protocol")
	flag.StringVar(&cfg.httpAddr, "http", "", "HTTP sidecar listen address (empty = disabled)")
	flag.BoolVar(&cfg.usePool, "pool", true, "serve opens through a shared handle pool")
	flag.IntVar(&cfg.maxQueries, "max-queries", server.DefaultMaxQueries, "concurrent query streams before BUSY")
	flag.DurationVar(&cfg.drain, "drain", 30*time.Second, "graceful-drain deadline on SIGTERM/SIGINT")
	flag.DurationVar(&cfg.slow, "slow", 0, "slow-query threshold (0 = disabled)")
	flag.StringVar(&cfg.slowlog, "slowlog", "", "append slow queries as JSON lines to FILE (\"-\" = stderr)")
	flag.IntVar(&cfg.querylog, "querylog", 0, "completed-query records kept for /slowqueries (0 = default)")
	flag.StringVar(&cfg.trace, "trace", "", "write a Chrome trace JSON to FILE on exit")
	flag.BoolVar(&cfg.pprof, "pprof", false, "mount net/http/pprof on the -http sidecar")
	flag.StringVar(&cfg.cluster, "cluster", "", "cluster membership file (\"name addr\" lines)")
	flag.StringVar(&cfg.node, "node", "", "this daemon's member name in -cluster")
	flag.Float64Var(&cfg.hotQPS, "hot-qps", 0, "per-bag hot threshold in QPS (0 = default 8, negative disables)")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "borad:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	if cfg.backend == "" {
		return fmt.Errorf("-backend is required")
	}
	if err := validateCluster(cfg); err != nil {
		return err
	}
	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if cfg.trace != "" {
		tracer = obs.NewTracer(0)
		reg.AttachTracer(tracer)
	}
	b, err := core.New(cfg.backend, core.Options{Obs: reg})
	if err != nil {
		return err
	}

	var slowSink io.Writer
	if cfg.slowlog != "" {
		if cfg.slowlog == "-" {
			slowSink = os.Stderr
		} else {
			f, err := os.OpenFile(cfg.slowlog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("-slowlog: %w", err)
			}
			defer f.Close()
			slowSink = f
		}
	}
	qlog := obs.NewQueryLog(cfg.querylog, cfg.slow, slowSink)

	// One tracker shared between server and pool: the same per-bag rate
	// drives the hot_bags stat and hot-handle eviction protection.
	var hot *obs.RateTracker
	if cfg.hotQPS >= 0 {
		hot = obs.NewRateTracker(0, 0)
	}
	opts := server.Options{
		MaxQueries: cfg.maxQueries, QueryLog: qlog, Pprof: cfg.pprof,
		Hot: hot, HotQPS: cfg.hotQPS,
	}
	if cfg.usePool {
		opts.Pool = pool.New(b, pool.Options{HotTracker: hot, HotQPS: cfg.hotQPS})
	}
	srv := server.New(b, opts)

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "borad: serving %s on %s (pool=%v, max-queries=%d)\n",
		cfg.backend, ln.Addr(), cfg.usePool, cfg.maxQueries)

	var hsrv *http.Server
	if cfg.httpAddr != "" {
		hln, err := net.Listen("tcp", cfg.httpAddr)
		if err != nil {
			ln.Close()
			return err
		}
		fmt.Fprintf(os.Stderr, "borad: http sidecar on %s\n", hln.Addr())
		hsrv = &http.Server{Handler: srv.HTTPHandler()}
		go hsrv.Serve(hln)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	writeTrace := func() {
		if tracer == nil {
			return
		}
		f, err := os.Create(cfg.trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "borad: trace:", err)
			return
		}
		defer f.Close()
		if err := tracer.WriteChromeTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, "borad: trace:", err)
		}
	}

	select {
	case err := <-errCh:
		writeTrace()
		return err
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "borad: %v: draining (deadline %v)\n", sig, cfg.drain)
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "borad: second signal: aborting")
		cancel()
	}()
	err = srv.Shutdown(ctx)
	if hsrv != nil {
		hsrv.Close()
	}
	writeTrace()
	if err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "borad: drained")
	return nil
}
